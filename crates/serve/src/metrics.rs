//! Per-request / per-batch accounting and the aggregate serving report.

use std::collections::HashMap;

use crate::batch::FlushReason;
use crate::request::{BatchKey, Response};

/// Timing record for one completed request chunk. Unchunked requests are
/// a single chunk (`chunk` 0 of 1), so at chunk count 1 these records are
/// exactly the pre-streaming per-request records.
#[derive(Debug, Clone)]
pub struct RequestMetric {
    /// The parent request id.
    pub id: u64,
    /// Scheduler lane the chunk was served from.
    pub lane: usize,
    /// Submit → batch-execution-start latency.
    pub queue_ns: u64,
    /// Batch execution wall time (shared by every member of the batch).
    pub service_ns: u64,
    /// Members in the batch this chunk rode in.
    pub batch_size: usize,
    /// Zero-based index of this chunk within its parent request.
    pub chunk: u32,
    /// Total chunks the parent request was split into.
    pub chunk_of: u32,
    /// The chunk was answered, but only after its deadline had passed
    /// (it started in time — else it would have been shed — but finished
    /// late). Counted as `expired` in the per-lane stats.
    pub deadline_missed: bool,
}

/// Record for one request the scheduler shed at dequeue: its deadline
/// passed while it queued, so it was dropped and counted, never rendered.
#[derive(Debug, Clone)]
pub struct ShedMetric {
    /// The request id.
    pub id: u64,
    /// Scheduler lane the request was shed from.
    pub lane: usize,
    /// Submit → shed-decision latency (time spent queued).
    pub queue_ns: u64,
}

/// Record for one request that terminated as `Failed`: it kept panicking
/// under quarantine (or its key's circuit breaker was open), so the
/// supervisor failed it instead of answering or hanging it.
#[derive(Debug, Clone)]
pub struct FailMetric {
    /// The request id.
    pub id: u64,
    /// Scheduler lane the request was admitted to.
    pub lane: usize,
    /// Submit → final-failure latency.
    pub queue_ns: u64,
}

/// Record for one request the brownout controller downgraded to a cheaper
/// precision under overload (it was still served — with the downgraded
/// payload — and is also counted in its lane's `served`).
#[derive(Debug, Clone)]
pub struct DegradeMetric {
    /// The request id.
    pub id: u64,
    /// Scheduler lane the request was served from.
    pub lane: usize,
}

/// Robustness totals only the supervisor/breaker know — handed to
/// [`ServeMetrics::aggregate`] alongside the per-request records.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustTotals {
    /// Crashed workers the supervisor respawned.
    pub worker_restarts: usize,
    /// Re-execution attempts of quarantined requests (each retry counts).
    pub retried: usize,
    /// Times a per-key circuit breaker tripped open.
    pub breaker_opened: usize,
    /// Half-open probes the breaker admitted after cooldowns.
    pub breaker_half_open_probes: usize,
}

/// Per-lane admission accounting the server hands to
/// [`ServeMetrics::aggregate`] (the lane identity plus what never entered
/// the queue).
#[derive(Debug, Clone)]
pub struct LaneAccounting {
    /// Lane label.
    pub name: String,
    /// Drain weight.
    pub weight: u64,
    /// Requests rejected at admission (full or zero-capacity lane).
    pub rejected: usize,
}

/// Aggregated per-lane serving outcome: every admitted request of the lane
/// is `served`, `shed`, or `failed`; `expired` is the subset of `served`
/// that finished past its deadline and `degraded` the subset served at a
/// browned-out precision.
#[derive(Debug, Clone)]
pub struct LaneStats {
    /// Lane label.
    pub name: String,
    /// Drain weight.
    pub weight: u64,
    /// Requests admitted to this lane (`served + shed + failed`).
    pub submitted: usize,
    /// Requests rendered and answered.
    pub served: usize,
    /// Requests dropped at dequeue because their deadline passed while
    /// queued.
    pub shed: usize,
    /// Served requests that finished after their deadline.
    pub expired: usize,
    /// Requests rejected at admission.
    pub rejected: usize,
    /// Requests that terminated as `Failed` under quarantine (or against
    /// an open circuit breaker).
    pub failed: usize,
    /// Served requests the brownout downgraded to a cheaper precision.
    pub degraded: usize,
    /// Queue-latency histogram over every admitted request (served, shed
    /// and failed alike — all experienced the queue).
    pub queue_hist: LatencyHistogram,
}

/// Record for one executed batch.
#[derive(Debug, Clone)]
pub struct BatchMetric {
    /// The coalescing key.
    pub key: BatchKey,
    /// Members executed together.
    pub size: usize,
    /// Execution wall time.
    pub service_ns: u64,
    /// Why the batch flushed.
    pub flush: FlushReason,
}

/// Simple summary statistics over a set of nanosecond samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct NsStats {
    /// Arithmetic mean.
    pub mean: u64,
    /// 50th percentile (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl NsStats {
    /// Computes stats from samples (all zeros when empty).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return NsStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        // Total on every input: `clamp(1, 0)` panics (min > max), so an
        // empty set short-circuits to 0 instead of relying on the guard
        // above staying in place.
        let rank = |p: f64| match sorted.len() {
            0 => 0,
            n => sorted[(((n as f64) * p).ceil() as usize).clamp(1, n) - 1],
        };
        NsStats {
            mean: (sorted.iter().map(|&v| v as u128).sum::<u128>() / sorted.len() as u128) as u64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Escapes a string for embedding in the hand-rolled JSON record. Lane
/// names are the one string callers control (every other string in the
/// record is a literal this crate owns), so they must not be able to
/// break the document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Number of histogram buckets: one per edge plus the overflow bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_EDGES_NS.len() + 1;

/// Fixed upper edges (exclusive, ns) of the latency histogram: log-4
/// spaced from 1 µs to ~16.8 s. Fixed — never derived from the data — so
/// bucket counts from different runs, machines and CI legs are directly
/// comparable, and a tail shift shows up as counts migrating to higher
/// buckets.
pub const LATENCY_EDGES_NS: [u64; 13] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
    16_777_216_000,
];

/// Fixed-bucket latency histogram (see [`LATENCY_EDGES_NS`]). Bucket `i`
/// counts samples in `[edge(i-1), edge(i))`; the last bucket counts
/// everything at or above the final edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: [0; LATENCY_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Adds one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = LATENCY_EDGES_NS
            .iter()
            .position(|&edge| ns < edge)
            .unwrap_or(LATENCY_EDGES_NS.len());
        self.counts[bucket] += 1;
    }

    /// Builds a histogram from samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut h = LatencyHistogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Per-bucket counts, lowest bucket first (overflow last).
    pub fn counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The exact bucketwise sum of two histograms — the fixed edges make
    /// merging lossless, so a cluster-wide histogram is *identical* to
    /// re-bucketing every underlying sample (the schema tests pin this).
    pub fn merge(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = *self;
        for (a, b) in out.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        out
    }

    /// The `{ "edges_ns": [...], "counts": [...] }` JSON fragment.
    fn to_json(self) -> String {
        let join = |it: &mut dyn Iterator<Item = u64>| {
            it.map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
        };
        format!(
            "{{ \"edges_ns\": [{}], \"counts\": [{}] }}",
            join(&mut LATENCY_EDGES_NS.iter().copied()),
            join(&mut self.counts.iter().copied())
        )
    }
}

/// Aggregate metrics for one serving run.
///
/// With streaming on (`chunks > 1`) the per-lane counters, `shed`,
/// `rejected`, `failed` and the queue/service stats are **chunk units**;
/// `requests` counts whole answered renders and `chunks_served` the
/// served chunk units. At chunk count 1 the two units coincide and every
/// field reproduces its pre-streaming value exactly.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Whole requests answered (every chunk served and reassembled).
    pub requests: usize,
    /// Chunk units served, summed over requests (`== requests` at chunk
    /// count 1).
    pub chunks_served: usize,
    /// Requests rejected at admission (zero-capacity or full lane, or a
    /// closed queue), summed over lanes.
    pub rejected: usize,
    /// Requests shed at dequeue (deadline passed while queued), summed
    /// over lanes.
    pub shed: usize,
    /// Served requests that finished after their deadline, summed over
    /// lanes.
    pub expired: usize,
    /// Requests that terminated as `Failed` (quarantine exhausted their
    /// retries, or their key's breaker was open), summed over lanes.
    pub failed: usize,
    /// Served requests the brownout downgraded to a cheaper precision,
    /// summed over lanes.
    pub degraded: usize,
    /// Re-execution attempts of quarantined requests.
    pub retried: usize,
    /// Crashed workers the supervisor respawned.
    pub worker_restarts: usize,
    /// Times a per-key circuit breaker tripped open.
    pub breaker_opened: usize,
    /// Half-open probes the breaker admitted after cooldowns.
    pub breaker_half_open_probes: usize,
    /// Per-lane outcome counters and queue-latency histograms.
    pub lanes: Vec<LaneStats>,
    /// Batches executed.
    pub batches: usize,
    /// Mean batch size over all batches.
    pub mean_occupancy: f64,
    /// Mean batch size restricted to the coalescable portion of the
    /// workload: batches whose key received more than one request over the
    /// whole run (a key requested once can never coalesce, so it says
    /// nothing about the batcher).
    pub coalescable_occupancy: f64,
    /// Batches flushed by the size threshold.
    pub flushed_size: usize,
    /// Batches flushed by linger timeout.
    pub flushed_timeout: usize,
    /// Batches flushed by shutdown drain.
    pub flushed_drain: usize,
    /// Queue-latency stats (submit → execution start), per chunk.
    pub queue_ns: NsStats,
    /// Batch service-time stats.
    pub service_ns: NsStats,
    /// Time-to-first-chunk stats: per answered request, the *smallest*
    /// chunk end-to-end latency — when the stream's first byte band was
    /// ready. Equals `render_ns` at chunk count 1.
    pub first_chunk_ns: NsStats,
    /// Full-render latency stats: per answered request, the *largest*
    /// chunk end-to-end latency — when the whole response was ready.
    pub render_ns: NsStats,
    /// Fixed-bucket histogram of per-request end-to-end latency (the
    /// `render_ns` samples: queue wait + batch service of the slowest
    /// chunk), for CI-diffable tail tracking.
    pub latency_hist: LatencyHistogram,
    /// Fixed-bucket histogram of the time-to-first-chunk samples.
    pub first_chunk_hist: LatencyHistogram,
    /// Whole-run wall time.
    pub wall_ns: u64,
    /// Worker threads the server ran.
    pub workers: usize,
    /// `fnr_par` width during the run (inner render parallelism).
    pub threads: usize,
    /// Order-canonical digest of the response set.
    pub digest: u64,
}

impl ServeMetrics {
    /// Builds the aggregate from raw per-request/per-batch/per-shed
    /// records plus the lane identities (`lane_acct` order defines lane
    /// indices).
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        request_metrics: &[RequestMetric],
        batch_metrics: &[BatchMetric],
        shed_metrics: &[ShedMetric],
        fail_metrics: &[FailMetric],
        degrade_metrics: &[DegradeMetric],
        responses: &[Response],
        lane_acct: &[LaneAccounting],
        robust: RobustTotals,
        wall_ns: u64,
        workers: usize,
        threads: usize,
    ) -> Self {
        let lanes: Vec<LaneStats> = lane_acct
            .iter()
            .enumerate()
            .map(|(li, acct)| {
                let served: Vec<&RequestMetric> =
                    request_metrics.iter().filter(|m| m.lane == li).collect();
                let shed: Vec<&ShedMetric> = shed_metrics.iter().filter(|m| m.lane == li).collect();
                let failed: Vec<&FailMetric> =
                    fail_metrics.iter().filter(|m| m.lane == li).collect();
                let mut queue_hist = LatencyHistogram::new();
                for m in &served {
                    queue_hist.record(m.queue_ns);
                }
                for m in &shed {
                    queue_hist.record(m.queue_ns);
                }
                for m in &failed {
                    queue_hist.record(m.queue_ns);
                }
                LaneStats {
                    name: acct.name.clone(),
                    weight: acct.weight,
                    submitted: served.len() + shed.len() + failed.len(),
                    served: served.len(),
                    shed: shed.len(),
                    expired: served.iter().filter(|m| m.deadline_missed).count(),
                    rejected: acct.rejected,
                    failed: failed.len(),
                    degraded: degrade_metrics.iter().filter(|m| m.lane == li).count(),
                    queue_hist,
                }
            })
            .collect();
        let mut key_totals: HashMap<&BatchKey, usize> = HashMap::new();
        for b in batch_metrics {
            *key_totals.entry(&b.key).or_insert(0) += b.size;
        }
        let coalescable: Vec<&BatchMetric> =
            batch_metrics.iter().filter(|b| key_totals[&b.key] > 1).collect();
        let mean = |batches: &[&BatchMetric]| {
            if batches.is_empty() {
                0.0
            } else {
                batches.iter().map(|b| b.size).sum::<usize>() as f64 / batches.len() as f64
            }
        };
        let all: Vec<&BatchMetric> = batch_metrics.iter().collect();
        // Group chunk records by parent request: a parent every chunk of
        // which was served is an answered request. Its *fastest* chunk
        // latency is the time-to-first-chunk (the stream had bytes), its
        // *slowest* is the full-render latency (the stream completed). At
        // chunk count 1 both equal the single chunk's latency, so the
        // histograms and stats reproduce their pre-streaming values.
        let mut parents: HashMap<u64, (u32, u32, u64, u64)> = HashMap::new();
        for m in request_metrics {
            let lat = m.queue_ns + m.service_ns;
            let e = parents.entry(m.id).or_insert((0, m.chunk_of, u64::MAX, 0));
            e.0 += 1;
            e.2 = e.2.min(lat);
            e.3 = e.3.max(lat);
        }
        let mut first_samples = Vec::new();
        let mut full_samples = Vec::new();
        for &(count, of, min, max) in parents.values() {
            if count == of {
                first_samples.push(min);
                full_samples.push(max);
            }
        }
        ServeMetrics {
            requests: full_samples.len(),
            chunks_served: request_metrics.len(),
            rejected: lanes.iter().map(|l| l.rejected).sum(),
            shed: shed_metrics.len(),
            expired: lanes.iter().map(|l| l.expired).sum(),
            failed: fail_metrics.len(),
            degraded: degrade_metrics.len(),
            retried: robust.retried,
            worker_restarts: robust.worker_restarts,
            breaker_opened: robust.breaker_opened,
            breaker_half_open_probes: robust.breaker_half_open_probes,
            lanes,
            batches: batch_metrics.len(),
            mean_occupancy: mean(&all),
            coalescable_occupancy: mean(&coalescable),
            flushed_size: batch_metrics.iter().filter(|b| b.flush == FlushReason::Size).count(),
            flushed_timeout: batch_metrics.iter().filter(|b| b.flush == FlushReason::Timeout).count(),
            flushed_drain: batch_metrics.iter().filter(|b| b.flush == FlushReason::Drain).count(),
            queue_ns: NsStats::from_samples(
                &request_metrics.iter().map(|m| m.queue_ns).collect::<Vec<_>>(),
            ),
            service_ns: NsStats::from_samples(
                &batch_metrics.iter().map(|m| m.service_ns).collect::<Vec<_>>(),
            ),
            first_chunk_ns: NsStats::from_samples(&first_samples),
            render_ns: NsStats::from_samples(&full_samples),
            latency_hist: LatencyHistogram::from_samples(&full_samples),
            first_chunk_hist: LatencyHistogram::from_samples(&first_samples),
            wall_ns,
            workers,
            threads,
            digest: crate::request::response_set_digest(responses),
        }
    }

    /// Renders the `flexnerfer-serve-bench/4` JSON record (hand-rolled,
    /// mirroring the `flexnerfer-repro-bench/2` trajectory format: every
    /// value is a number or a string this crate controls). Schema `/2`
    /// extended `/1` with the scheduler's `shed`/`expired` totals and the
    /// per-lane `lanes` array; `/3` added the robustness counters —
    /// `failed`/`retried`/`degraded`/`worker_restarts` totals, the
    /// `breaker` object, and per-lane `failed`/`degraded`; `/4` adds the
    /// streaming fields — `chunks_served`, the `first_chunk_ns` /
    /// `render_ns` stats, `first_chunk_hist`, a `p99` in every stats
    /// object — and re-bases the per-lane counters on chunk units
    /// (identical to `/3` at chunk count 1).
    pub fn to_json(&self) -> String {
        let stats = |s: &NsStats| {
            format!(
                "{{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }}",
                s.mean, s.p50, s.p95, s.p99, s.max
            )
        };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"flexnerfer-serve-bench/4\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"chunks_served\": {},\n", self.chunks_served));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!("  \"expired\": {},\n", self.expired));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"retried\": {},\n", self.retried));
        out.push_str(&format!("  \"degraded\": {},\n", self.degraded));
        out.push_str(&format!("  \"worker_restarts\": {},\n", self.worker_restarts));
        out.push_str(&format!(
            "  \"breaker\": {{ \"opened\": {}, \"half_open_probes\": {} }},\n",
            self.breaker_opened, self.breaker_half_open_probes
        ));
        out.push_str("  \"lanes\": [\n");
        out.push_str(&lanes_json(&self.lanes, "    "));
        out.push_str("  ],\n");
        out.push_str(&format!("  \"batches\": {},\n", self.batches));
        out.push_str(&format!("  \"mean_batch_occupancy\": {:.4},\n", self.mean_occupancy));
        out.push_str(&format!("  \"coalescable_occupancy\": {:.4},\n", self.coalescable_occupancy));
        out.push_str(&format!(
            "  \"flushes\": {{ \"size\": {}, \"timeout\": {}, \"drain\": {} }},\n",
            self.flushed_size, self.flushed_timeout, self.flushed_drain
        ));
        out.push_str(&format!("  \"queue_ns\": {},\n", stats(&self.queue_ns)));
        out.push_str(&format!("  \"service_ns\": {},\n", stats(&self.service_ns)));
        out.push_str(&format!("  \"first_chunk_ns\": {},\n", stats(&self.first_chunk_ns)));
        out.push_str(&format!("  \"render_ns\": {},\n", stats(&self.render_ns)));
        out.push_str(&format!("  \"request_latency_hist\": {},\n", self.latency_hist.to_json()));
        out.push_str(&format!("  \"first_chunk_hist\": {},\n", self.first_chunk_hist.to_json()));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!("  \"digest\": \"{:#018x}\"\n", self.digest));
        out.push_str("}\n");
        out
    }
}

/// Renders a `lanes` array body (one line per lane, `indent`-prefixed),
/// shared by the serve and cluster schemas so per-lane counter shapes
/// stay identical between them.
fn lanes_json(lanes: &[LaneStats], indent: &str) -> String {
    let mut out = String::new();
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "{indent}{{ \"name\": \"{}\", \"weight\": {}, \"submitted\": {}, \"served\": {}, \
             \"shed\": {}, \"expired\": {}, \"rejected\": {}, \"failed\": {}, \"degraded\": {}, \
             \"queue_hist\": {} }}{}\n",
            json_escape(&lane.name),
            lane.weight,
            lane.submitted,
            lane.served,
            lane.shed,
            lane.expired,
            lane.rejected,
            lane.failed,
            lane.degraded,
            lane.queue_hist.to_json(),
            if i + 1 == lanes.len() { "" } else { "," }
        ));
    }
    out
}

/// One replica's view of a cluster run: its full single-server metrics
/// plus the cluster-layer counters (routing, failover, faults, cache).
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Replica index (ring identity).
    pub replica: usize,
    /// Whether the replica was alive when the run ended.
    pub alive: bool,
    /// Kill events this replica absorbed.
    pub kills: usize,
    /// Restart events this replica absorbed.
    pub restarts: usize,
    /// Fresh submissions the router sent here (failovers excluded).
    pub routed: usize,
    /// Orphans of this replica's kills that were re-admitted elsewhere.
    pub failed_over_out: usize,
    /// Orphans of other replicas' kills re-admitted here.
    pub failed_over_in: usize,
    /// Model-cache hits (a batch whose `(scene, precision)` model was
    /// already resident).
    pub cache_hits: u64,
    /// Model-cache misses (the batch paid the modeled cold-start cost).
    pub cache_misses: u64,
    /// Virtual time this replica's workers spent serving batches.
    pub busy_ns: u64,
    /// Times the failure detector marked this replica Suspect (a
    /// `Healthy → Suspect` crossing, counted once per crossing).
    pub suspects: usize,
    /// Gray-failure service-time multiplier in effect when the run ended
    /// (1 = nominal; set by `slow@T:R:F` fault events).
    pub slow_factor: u64,
    /// Whether the replica left the ring gracefully (`leave@T:R`) and
    /// finished draining before the run ended.
    pub departed: bool,
    /// The replica's own single-server aggregate (lane counters, queue
    /// histograms, digest over the responses it served).
    pub metrics: ServeMetrics,
}

/// The counters only the cluster front door (router + hedging + admission
/// control) knows — bundled so [`ClusterMetrics::aggregate`] stays
/// readable as the layer grows.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontDoorTotals {
    /// Requests dropped at the front door for any reason (no routable
    /// replica, or overload admission). Includes `overload_shed`.
    pub front_door_shed: usize,
    /// The CoDel-admission subset of `front_door_shed`: Batch-class
    /// arrivals shed because the target replica was in its dropping
    /// state.
    pub overload_shed: usize,
    /// Requests that got a hedge copy placed on a second replica.
    pub hedged: usize,
    /// Hedged requests whose *hedge* copy completed first.
    pub hedge_won: usize,
    /// Hedged requests where the hedge copy lost (primary won, or the
    /// request terminated non-served). `hedged == hedge_won +
    /// hedge_wasted` always.
    pub hedge_wasted: usize,
    /// Replicas added by `join@T` scale-out events.
    pub joins: usize,
    /// Replicas drained by `leave@T:R` scale-in events.
    pub leaves: usize,
}

/// Aggregate metrics for one cluster simulation run: cluster-wide totals
/// plus every replica's [`ReplicaStats`]. The cluster latency histogram
/// is the exact bucketwise merge of the replica histograms.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Per-replica stats, in replica-index order.
    pub replicas: Vec<ReplicaStats>,
    /// Jobs in the submitted schedule.
    pub submitted: usize,
    /// Chunk units across the submitted schedule (`== submitted` at
    /// chunk count 1). The conservation law balances in these units.
    pub submitted_chunks: usize,
    /// Chunk units served (answered with payload bytes), summed over
    /// replicas. With streaming on, one request's chunks may be served
    /// by different replicas after a failover.
    pub served: usize,
    /// Whole requests answered: parents whose every chunk was served
    /// somewhere in the cluster and reassembled (`== served` at chunk
    /// count 1).
    pub completed: usize,
    /// Requests shed by replica schedulers (deadline passed while
    /// queued), summed over replicas.
    pub shed: usize,
    /// Requests the front door dropped: no routable replica with
    /// inflight headroom existed (fresh submissions and failover
    /// re-admissions alike), or CoDel overload admission shed the
    /// arrival. Superset of `overload_shed`.
    pub front_door_shed: usize,
    /// The CoDel overload-admission subset of `front_door_shed`.
    pub overload_shed: usize,
    /// Requests that got a hedge copy placed on a second replica.
    pub hedged: usize,
    /// Hedged requests whose hedge copy completed first.
    pub hedge_won: usize,
    /// Hedged requests whose hedge copy lost or was wasted.
    pub hedge_wasted: usize,
    /// Replicas added by scale-out (`join@T`) events.
    pub joins: usize,
    /// Replicas drained by scale-in (`leave@T:R`) events.
    pub leaves: usize,
    /// `Healthy → Suspect` detector crossings, summed over replicas.
    pub suspects: usize,
    /// Served requests that finished past their deadline, summed over
    /// replicas.
    pub expired: usize,
    /// Requests rejected at a replica's admission (full lane), summed
    /// over replicas.
    pub rejected: usize,
    /// Requests that terminated as `Failed` (fault injection / quarantine)
    /// on a replica, summed over replicas.
    pub failed: usize,
    /// Orphaned requests successfully re-admitted on another replica.
    pub failed_over: usize,
    /// Kill events executed by the fault plan.
    pub kills: usize,
    /// Restart events executed by the fault plan.
    pub restarts: usize,
    /// Exact merge of the per-replica end-to-end latency histograms.
    pub latency_hist: LatencyHistogram,
    /// Exact merge of the per-replica time-to-first-chunk histograms.
    pub first_chunk_hist: LatencyHistogram,
    /// Virtual wall clock when the last replica went idle.
    pub wall_ns: u64,
    /// Virtual workers per replica.
    pub workers_per_replica: usize,
    /// `fnr_par` width during the run (render fan-out only).
    pub threads: usize,
    /// Order-canonical digest over the whole cluster's response set.
    pub digest: u64,
}

impl ClusterMetrics {
    /// Builds the cluster aggregate from per-replica stats plus the
    /// front-door counters only the router knows.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        replicas: Vec<ReplicaStats>,
        submitted: usize,
        submitted_chunks: usize,
        completed: usize,
        front_door: FrontDoorTotals,
        wall_ns: u64,
        workers_per_replica: usize,
        threads: usize,
        digest: u64,
    ) -> Self {
        let mut latency_hist = LatencyHistogram::new();
        let mut first_chunk_hist = LatencyHistogram::new();
        for r in &replicas {
            latency_hist = latency_hist.merge(&r.metrics.latency_hist);
            first_chunk_hist = first_chunk_hist.merge(&r.metrics.first_chunk_hist);
        }
        ClusterMetrics {
            submitted,
            submitted_chunks,
            completed,
            served: replicas.iter().map(|r| r.metrics.chunks_served).sum(),
            shed: replicas.iter().map(|r| r.metrics.shed).sum(),
            front_door_shed: front_door.front_door_shed,
            overload_shed: front_door.overload_shed,
            hedged: front_door.hedged,
            hedge_won: front_door.hedge_won,
            hedge_wasted: front_door.hedge_wasted,
            joins: front_door.joins,
            leaves: front_door.leaves,
            suspects: replicas.iter().map(|r| r.suspects).sum(),
            expired: replicas.iter().map(|r| r.metrics.expired).sum(),
            rejected: replicas.iter().map(|r| r.metrics.rejected).sum(),
            failed: replicas.iter().map(|r| r.metrics.failed).sum(),
            failed_over: replicas.iter().map(|r| r.failed_over_in).sum(),
            kills: replicas.iter().map(|r| r.kills).sum(),
            restarts: replicas.iter().map(|r| r.restarts).sum(),
            latency_hist,
            first_chunk_hist,
            wall_ns,
            workers_per_replica,
            threads,
            digest,
            replicas,
        }
    }

    /// Every submitted chunk unit must terminate exactly once somewhere
    /// in the cluster: served, scheduler-shed, rejected at an admission
    /// edge, failed under fault injection, or dropped at the front door.
    /// Failover moves a chunk, it never duplicates or loses one — this
    /// is the conservation law the chaos suite (and the CLI self-check)
    /// enforce. At chunk count 1 the units are whole requests and the
    /// balance is against `submitted` itself.
    pub fn conserves_submitted(&self) -> bool {
        self.served + self.shed + self.rejected + self.failed + self.front_door_shed
            == self.submitted_chunks
    }

    /// Renders the `flexnerfer-cluster-bench/4` JSON record (hand-rolled
    /// like the serve/repro records: every value is a number or a string
    /// this crate controls). Schema `/3` added the resilience-layer totals
    /// (`overload_shed`, `hedged`/`hedge_won`/`hedge_wasted`, `joins`,
    /// `leaves`, `suspects`) and per-replica `suspects`/`slow_factor`/
    /// `departed`; `/2` added the `failed` totals (and the per-lane
    /// `failed`/`degraded` counters inherited from the serve lanes
    /// array); `/4` adds the streaming fields — `submitted_chunks`,
    /// `completed`, `first_chunk_hist` — and re-bases `served`/`shed`/
    /// `rejected`/`failed` on chunk units (identical to `/3` at chunk
    /// count 1).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"flexnerfer-cluster-bench/4\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"replicas\": {},\n", self.replicas.len()));
        out.push_str(&format!("  \"workers_per_replica\": {},\n", self.workers_per_replica));
        out.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("  \"submitted_chunks\": {},\n", self.submitted_chunks));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"served\": {},\n", self.served));
        out.push_str(&format!("  \"shed\": {},\n", self.shed));
        out.push_str(&format!("  \"front_door_shed\": {},\n", self.front_door_shed));
        out.push_str(&format!("  \"overload_shed\": {},\n", self.overload_shed));
        out.push_str(&format!("  \"expired\": {},\n", self.expired));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"failed_over\": {},\n", self.failed_over));
        out.push_str(&format!(
            "  \"hedging\": {{ \"hedged\": {}, \"won\": {}, \"wasted\": {} }},\n",
            self.hedged, self.hedge_won, self.hedge_wasted
        ));
        out.push_str(&format!("  \"kills\": {},\n", self.kills));
        out.push_str(&format!("  \"restarts\": {},\n", self.restarts));
        out.push_str(&format!("  \"joins\": {},\n", self.joins));
        out.push_str(&format!("  \"leaves\": {},\n", self.leaves));
        out.push_str(&format!("  \"suspects\": {},\n", self.suspects));
        out.push_str("  \"replica_stats\": [\n");
        for (i, r) in self.replicas.iter().enumerate() {
            let m = &r.metrics;
            let hit_ratio = if r.cache_hits + r.cache_misses == 0 {
                0.0
            } else {
                r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64
            };
            let utilization = if self.wall_ns == 0 {
                0.0
            } else {
                r.busy_ns as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(
                "    {{ \"replica\": {}, \"alive\": {}, \"departed\": {}, \"kills\": {}, \
                 \"restarts\": {}, \"suspects\": {}, \"slow_factor\": {}, \
                 \"routed\": {}, \"failed_over_out\": {}, \"failed_over_in\": {}, \
                 \"served\": {}, \"shed\": {}, \"expired\": {}, \"rejected\": {}, \
                 \"failed\": {}, \
                 \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_ratio\": {:.4} }}, \
                 \"utilization\": {:.4}, \"digest\": \"{:#018x}\",\n",
                r.replica,
                r.alive,
                r.departed,
                r.kills,
                r.restarts,
                r.suspects,
                r.slow_factor,
                r.routed,
                r.failed_over_out,
                r.failed_over_in,
                m.chunks_served,
                m.shed,
                m.expired,
                m.rejected,
                m.failed,
                r.cache_hits,
                r.cache_misses,
                hit_ratio,
                utilization,
                m.digest,
            ));
            out.push_str("      \"lanes\": [\n");
            out.push_str(&lanes_json(&m.lanes, "        "));
            out.push_str("      ],\n");
            out.push_str(&format!(
                "      \"request_latency_hist\": {} }}{}\n",
                m.latency_hist.to_json(),
                if i + 1 == self.replicas.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"request_latency_hist\": {},\n", self.latency_hist.to_json()));
        out.push_str(&format!("  \"first_chunk_hist\": {},\n", self.first_chunk_hist.to_json()));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!("  \"digest\": \"{:#018x}\"\n", self.digest));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SceneKind;

    fn bm(key: BatchKey, size: usize, flush: FlushReason) -> BatchMetric {
        BatchMetric { key, size, service_ns: 1000, flush }
    }

    fn acct(n: usize) -> Vec<LaneAccounting> {
        (0..n)
            .map(|i| LaneAccounting { name: format!("lane{i}"), weight: 1, rejected: 0 })
            .collect()
    }

    fn rm(id: u64, lane: usize, queue_ns: u64, deadline_missed: bool) -> RequestMetric {
        RequestMetric {
            id,
            lane,
            queue_ns,
            service_ns: 50_000,
            batch_size: 1,
            chunk: 0,
            chunk_of: 1,
            deadline_missed,
        }
    }

    #[test]
    fn ns_stats_percentiles() {
        let s = NsStats::from_samples(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 100);
        assert_eq!(s.p99, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 55);
        assert_eq!(NsStats::from_samples(&[]).max, 0);
        let wide: Vec<u64> = (1..=200).collect();
        assert_eq!(NsStats::from_samples(&wide).p99, 198, "nearest-rank p99 of 1..=200");
    }

    /// A run that served nothing must yield all-zero stats everywhere a
    /// percentile is computed — no panic from `clamp(1, 0)` on an empty
    /// sorted set.
    #[test]
    fn ns_stats_empty_and_singleton_are_total() {
        let empty = NsStats::from_samples(&[]);
        assert_eq!((empty.mean, empty.p50, empty.p95, empty.max), (0, 0, 0, 0));
        let one = NsStats::from_samples(&[7]);
        assert_eq!((one.mean, one.p50, one.p95, one.max), (7, 7, 7, 7));
    }

    /// Aggregating a run with zero requests of any kind (the zero-served
    /// case) must not panic and must report zeros.
    #[test]
    fn aggregate_of_zero_served_run_is_all_zero() {
        let m = ServeMetrics::aggregate(
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
            &acct(2),
            RobustTotals::default(),
            0,
            1,
            1,
        );
        assert_eq!(m.requests, 0);
        assert_eq!(m.queue_ns.max, 0);
        assert_eq!(m.service_ns.p95, 0);
        assert!(!m.to_json().is_empty(), "empty run still serializes");
    }

    #[test]
    fn coalescable_occupancy_excludes_singleton_keys() {
        let k1 = BatchKey::Render(SceneKind::Mic, crate::request::RenderPrecision::Fp32);
        let k2 = BatchKey::Table("lonely".into());
        // k1 got 4 requests over 2 batches (coalescable); k2 got exactly 1.
        let batches = vec![
            bm(k1.clone(), 3, FlushReason::Size),
            bm(k1.clone(), 1, FlushReason::Drain),
            bm(k2, 1, FlushReason::Timeout),
        ];
        let m = ServeMetrics::aggregate(
            &[],
            &batches,
            &[],
            &[],
            &[],
            &[],
            &acct(1),
            RobustTotals::default(),
            0,
            1,
            1,
        );
        assert!((m.mean_occupancy - 5.0 / 3.0).abs() < 1e-9);
        assert!((m.coalescable_occupancy - 2.0).abs() < 1e-9, "k2 excluded: (3+1)/2");
        assert_eq!(m.flushed_size, 1);
        assert_eq!(m.flushed_timeout, 1);
        assert_eq!(m.flushed_drain, 1);
    }

    #[test]
    fn json_contains_schema_lanes_and_digest() {
        let mut lanes = acct(2);
        lanes[0].rejected = 2;
        let sheds = vec![ShedMetric { id: 9, lane: 1, queue_ns: 5_000 }];
        let fails = vec![FailMetric { id: 10, lane: 0, queue_ns: 7_000 }];
        let degrades = vec![DegradeMetric { id: 0, lane: 0 }];
        let robust = RobustTotals {
            worker_restarts: 1,
            retried: 2,
            breaker_opened: 1,
            breaker_half_open_probes: 1,
        };
        let m = ServeMetrics::aggregate(
            &[rm(0, 0, 100, true)],
            &[],
            &sheds,
            &fails,
            &degrades,
            &[],
            &lanes,
            robust,
            42,
            3,
            4,
        );
        let j = m.to_json();
        // The schema bump: /4 carries the streaming fields alongside
        // everything /3 had (robustness counters, lanes array, totals).
        assert!(j.contains("\"schema\": \"flexnerfer-serve-bench/4\""));
        assert!(j.contains("\"chunks_served\": 1,"));
        assert!(j.contains("\"first_chunk_ns\": {"));
        assert!(j.contains("\"render_ns\": {"));
        assert!(j.contains("\"first_chunk_hist\": { \"edges_ns\": [1000, "));
        assert!(j.contains("\"p99\": "));
        assert!(j.contains("\"rejected\": 2"));
        assert!(j.contains("\"shed\": 1,"));
        assert!(j.contains("\"expired\": 1,"));
        assert!(j.contains("\n  \"failed\": 1,"));
        assert!(j.contains("\n  \"retried\": 2,"));
        assert!(j.contains("\n  \"degraded\": 1,"));
        assert!(j.contains("\n  \"worker_restarts\": 1,"));
        assert!(j.contains("\"breaker\": { \"opened\": 1, \"half_open_probes\": 1 }"));
        assert!(j.contains("\"lanes\": ["));
        assert!(j.contains(
            "\"name\": \"lane0\", \"weight\": 1, \"submitted\": 2, \"served\": 1, \"shed\": 0, \
             \"expired\": 1, \"rejected\": 2, \"failed\": 1, \"degraded\": 1, \
             \"queue_hist\": { \"edges_ns\": [1000, "
        ));
        assert!(j.contains("\"name\": \"lane1\", \"weight\": 1, \"submitted\": 1, \"served\": 0, \"shed\": 1,"));
        assert!(j.contains("\"digest\": \"0x"));
        assert!(j.contains("\"request_latency_hist\": { \"edges_ns\": [1000, "));
    }

    #[test]
    fn lane_names_are_json_escaped() {
        let lanes = vec![LaneAccounting { name: "ti\"er\\1\n".into(), weight: 1, rejected: 0 }];
        let j = ServeMetrics::aggregate(
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
            &lanes,
            RobustTotals::default(),
            0,
            1,
            1,
        )
        .to_json();
        assert!(
            j.contains("\"name\": \"ti\\\"er\\\\1\\u000a\""),
            "hostile lane name must not break the record: {j}"
        );
    }

    #[test]
    fn lane_stats_partition_admitted_requests() {
        let reqs = vec![rm(0, 0, 100, false), rm(1, 0, 200, true), rm(2, 1, 300, false)];
        let sheds = vec![
            ShedMetric { id: 3, lane: 0, queue_ns: 400 },
            ShedMetric { id: 4, lane: 2, queue_ns: 500 },
        ];
        let fails = vec![FailMetric { id: 5, lane: 1, queue_ns: 600 }];
        let m = ServeMetrics::aggregate(
            &reqs,
            &[],
            &sheds,
            &fails,
            &[],
            &[],
            &acct(3),
            RobustTotals::default(),
            0,
            1,
            1,
        );
        assert_eq!(m.requests, 3);
        assert_eq!(m.shed, 2);
        assert_eq!(m.expired, 1);
        assert_eq!(m.failed, 1);
        for lane in &m.lanes {
            assert_eq!(lane.submitted, lane.served + lane.shed + lane.failed, "{}", lane.name);
            // Served, shed and failed all pass through the queue: the
            // histogram counts every admitted request.
            assert_eq!(lane.queue_hist.total() as usize, lane.submitted, "{}", lane.name);
        }
        assert_eq!(m.lanes[0].submitted, 3);
        assert_eq!(m.lanes[0].expired, 1);
        assert_eq!(m.lanes[1].submitted, 2);
        assert_eq!(m.lanes[1].failed, 1);
        assert_eq!(m.lanes[2].shed, 1);
    }

    fn rmc(id: u64, queue_ns: u64, chunk: u32, chunk_of: u32) -> RequestMetric {
        RequestMetric { chunk, chunk_of, ..rm(id, 0, queue_ns, false) }
    }

    #[test]
    fn first_chunk_and_full_render_latencies_group_per_parent() {
        // Parent 0: two chunks at latencies 50_100 / 50_300 (queue +
        // 50_000 service). Parent 1: one whole chunk at 50_200. Parent 2
        // is incomplete (1 of 2 chunks served) — chunk counted, request
        // not.
        let reqs = vec![
            rmc(0, 100, 0, 2),
            rmc(0, 300, 1, 2),
            rmc(1, 200, 0, 1),
            rmc(2, 400, 0, 2),
        ];
        let m = ServeMetrics::aggregate(
            &reqs,
            &[],
            &[],
            &[],
            &[],
            &[],
            &acct(1),
            RobustTotals::default(),
            0,
            1,
            1,
        );
        assert_eq!(m.requests, 2, "only complete parents are answered requests");
        assert_eq!(m.chunks_served, 4);
        assert_eq!(m.first_chunk_ns.max, 50_200, "per-parent minima: 50_100 and 50_200");
        assert_eq!(m.render_ns.max, 50_300, "per-parent maxima: 50_300 and 50_200");
        assert_eq!(m.first_chunk_hist.total(), 2);
        assert_eq!(m.latency_hist.total(), 2);
        // The lane counters stay chunk-granular.
        assert_eq!(m.lanes[0].served, 4);
    }

    #[test]
    fn histogram_buckets_by_fixed_edges() {
        let mut h = LatencyHistogram::new();
        h.record(0); // below the first edge
        h.record(999);
        h.record(1_000); // exactly an edge → next bucket
        h.record(5_000_000); // 5 ms → the (4.096 ms, 16.384 ms] bucket
        h.record(u64::MAX); // overflow bucket
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[7], 1);
        assert_eq!(h.counts()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
    }

    /// A latency exactly at a log-4 bucket edge must land deterministically
    /// in the bucket *above* the edge (edges are exclusive upper bounds) on
    /// every recording path — `record`, `from_samples`, and a `merge` of
    /// partial histograms. Pins every one of the 13 edges so an off-by-one
    /// in any path shows up as a bucket migration.
    #[test]
    fn every_log4_edge_value_lands_in_one_deterministic_bucket() {
        for (i, &edge) in LATENCY_EDGES_NS.iter().enumerate() {
            let mut at = LatencyHistogram::new();
            at.record(edge);
            assert_eq!(at.counts()[i + 1], 1, "sample == edge {edge} lands above the edge");
            assert_eq!(at.total(), 1, "edge {edge} is counted exactly once");
            let mut below = LatencyHistogram::new();
            below.record(edge - 1);
            assert_eq!(below.counts()[i], 1, "edge-1 stays below edge {edge}");
            assert_eq!(
                LatencyHistogram::from_samples(&[edge, edge - 1]),
                at.merge(&below),
                "from_samples and record agree at edge {edge}"
            );
        }
    }

    /// Merging histograms whose samples straddle the edges is exactly the
    /// histogram of the combined sample set — the cluster-wide merge can
    /// never move an edge-valued sample to a different bucket.
    #[test]
    fn histogram_merge_is_exact_for_edge_valued_samples() {
        let samples: Vec<u64> =
            LATENCY_EDGES_NS.iter().flat_map(|&e| [e - 1, e, e + 1]).collect();
        for split in [1, 7, samples.len() / 2, samples.len() - 1] {
            let (a, b) = samples.split_at(split);
            let merged =
                LatencyHistogram::from_samples(a).merge(&LatencyHistogram::from_samples(b));
            assert_eq!(merged, LatencyHistogram::from_samples(&samples), "split at {split}");
        }
    }

    #[test]
    fn histogram_totals_match_request_count_in_aggregate() {
        let reqs: Vec<RequestMetric> = (0..17).map(|i| rm(i, 0, i * 100_000, false)).collect();
        let m = ServeMetrics::aggregate(
            &reqs,
            &[],
            &[],
            &[],
            &[],
            &[],
            &acct(1),
            RobustTotals::default(),
            0,
            1,
            1,
        );
        assert_eq!(m.latency_hist.total(), 17);
        // Edges are compile-time constants, so bucket identity is stable.
        assert_eq!(m.latency_hist.counts().len(), LATENCY_BUCKETS);
    }
}
