//! Worker supervision: crash reports, bounded respawn, and
//! bisection quarantine of poisoned batches.
//!
//! The worker pool is panic-isolated (each batch executes under
//! `catch_unwind` in [`crate::server::attempt_batch`]), but a panic still
//! retires the worker thread — unwinding through arbitrary render state is
//! not worth trusting twice. The retired worker ships a [`CrashReport`]
//! (the intact batch plus the panic reason) to the supervisor thread,
//! which:
//!
//! 1. **Respawns** a replacement worker while the consecutive-crash streak
//!    stays within [`SuperviseConfig::restart_budget`], after a
//!    deterministic exponential backoff. A successfully served batch
//!    anywhere in the pool resets the streak.
//! 2. **Quarantines** the crashed batch by bisection: halves re-execute
//!    through the same `attempt_batch` path; a half that crashes again is
//!    split further, until the poisoned request(s) stand alone. Innocent
//!    batch-mates are re-served with byte-identical payloads (response
//!    bytes are a pure function of the request, so a re-execution cannot
//!    be told from a first run).
//! 3. **Retries** isolated culprits per [`crate::fault::RetryPolicy`] with
//!    seeded backoff, then terminates them as
//!    [`crate::server::WaitOutcome::Failed`] and records the failure with
//!    the per-key circuit breaker.
//!
//! If the pool goes extinct (budget exhausted with no workers left), the
//! supervisor becomes the batch-queue consumer and fails every remaining
//! batch — the scheduler never wedges on a full hand-off queue and every
//! admitted request still terminates.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::batch::Batch;
use crate::request::job_hash;
use crate::server::{attempt_batch, fail_batch, worker_loop, ServerShared};

/// Worker supervision knobs.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseConfig {
    /// Maximum *consecutive* crashes (no successfully served batch in
    /// between) the supervisor will respawn after. Once exceeded, crashed
    /// workers stay down; if the whole pool is down, remaining batches
    /// fail fast instead of hanging. Zero never respawns.
    pub restart_budget: u32,
    /// Base respawn backoff; doubles per consecutive crash, capped at
    /// [`MAX_RESPAWN_BACKOFF`]. Deterministic — no jitter — so chaos runs
    /// replay identically.
    pub backoff: Duration,
}

/// Upper bound on the per-respawn backoff regardless of streak length.
pub const MAX_RESPAWN_BACKOFF: Duration = Duration::from_millis(50);

impl Default for SuperviseConfig {
    fn default() -> Self {
        // A budget of 6 tolerates bursts of adjacent poisoned batches
        // (each quarantine round can crash a fresh worker) without letting
        // a systematically crashing pool respawn forever.
        SuperviseConfig { restart_budget: 6, backoff: Duration::from_millis(1) }
    }
}

impl SuperviseConfig {
    /// The deterministic backoff before respawn number `streak` (1-based).
    pub fn respawn_backoff(&self, streak: u32) -> Duration {
        let doubled = self.backoff.saturating_mul(1u32 << streak.saturating_sub(1).min(16));
        doubled.min(MAX_RESPAWN_BACKOFF)
    }
}

/// What a retiring worker ships to the supervisor: the batch it was
/// executing (intact — nothing was posted) and the panic reason.
pub(crate) struct CrashReport {
    /// The batch whose execution panicked.
    pub(crate) batch: Batch,
    /// Human-readable panic payload.
    pub(crate) reason: String,
}

/// Renders a `catch_unwind` payload as a string.
pub(crate) fn panic_reason(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The supervisor role: parks on the crash channel, respawning workers
/// and quarantining crashed batches until shutdown. Holds a template
/// sender so the channel can never disconnect under it; exit is by the
/// shutdown flag once the pipeline threads are joined and its respawns
/// have finished.
pub(crate) fn supervisor_loop(
    shared: &Arc<ServerShared>,
    crash_rx: Receiver<CrashReport>,
    crash_tx: Sender<CrashReport>,
) {
    let mut respawned: Vec<JoinHandle<()>> = Vec::new();
    let mut workers_alive = shared.workers;
    let mut streak: u32 = 0;
    let mut last_served = shared.served_batches.load(Ordering::Relaxed);
    // Per-chunk attempt counts for quarantined culprits, keyed
    // `(request id, chunk index)` — each chunk of a poisoned request
    // retries and fails independently.
    let mut attempts: HashMap<(u64, u32), u32> = HashMap::new();
    loop {
        match crash_rx.recv_timeout(Duration::from_millis(2)) {
            Ok(report) => {
                workers_alive -= 1;
                let served = shared.served_batches.load(Ordering::Relaxed);
                if served != last_served {
                    last_served = served;
                    streak = 0;
                }
                streak += 1;
                quarantine(shared, report.batch, report.reason, &mut attempts);
                if streak <= shared.supervise.restart_budget {
                    std::thread::sleep(shared.supervise.respawn_backoff(streak));
                    shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    let sh = Arc::clone(shared);
                    let tx = crash_tx.clone();
                    respawned.push(std::thread::spawn(move || worker_loop(&sh, tx)));
                    workers_alive += 1;
                } else if workers_alive == 0 {
                    // Pool extinction: consume the batch queue ourselves so
                    // the scheduler cannot wedge on a full hand-off queue,
                    // failing everything fast. Ends when the scheduler
                    // closes the queue at drain.
                    while let Some(batch) = shared.batches.recv() {
                        fail_batch(
                            shared,
                            &batch,
                            "worker pool exhausted its restart budget",
                        );
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire)
                    && respawned.iter().all(|h| h.is_finished())
                {
                    break;
                }
            }
            // Unreachable while we hold `crash_tx`, but harmless.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    for h in respawned {
        h.join().expect("respawned worker panicked outside catch_unwind");
    }
}

/// Bisection quarantine of a crashed batch. Multi-member batches split in
/// half and each half re-executes; singletons retry per the server's
/// [`crate::fault::RetryPolicy`] and finally terminate as `Failed`,
/// recording the failure with the per-key circuit breaker. Runs on the
/// supervisor thread; recursion depth is bounded by `log2(batch) +
/// max_attempts`.
pub(crate) fn quarantine(
    shared: &ServerShared,
    mut batch: Batch,
    reason: String,
    attempts: &mut HashMap<(u64, u32), u32>,
) {
    if batch.requests.len() <= 1 {
        let Some(req) = batch.requests.first() else { return };
        let key = (req.id, req.chunk.index);
        let hash = job_hash(&req.job);
        let attempt = {
            let n = attempts.entry(key).or_insert(0);
            *n += 1;
            *n
        };
        if attempt < shared.retry.max_attempts {
            shared.retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_nanos(shared.retry.backoff_for(hash, attempt)));
            if let Err(crash) = attempt_batch(shared, batch) {
                quarantine(shared, crash.batch, crash.reason, attempts);
            }
        } else {
            let now = shared.now_ns();
            shared.breaker.lock().unwrap().record_failure(&batch.key, now);
            fail_batch(shared, &batch, &reason);
        }
        return;
    }
    let mid = batch.requests.len() / 2;
    let tail = batch.requests.split_off(mid);
    let tail_batch = Batch { key: batch.key.clone(), requests: tail, flush: batch.flush };
    for half in [batch, tail_batch] {
        if let Err(crash) = attempt_batch(shared, half) {
            quarantine(shared, crash.batch, crash.reason, attempts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawn_backoff_is_exponential_and_capped() {
        let cfg = SuperviseConfig { restart_budget: 6, backoff: Duration::from_millis(1) };
        assert_eq!(cfg.respawn_backoff(1), Duration::from_millis(1));
        assert_eq!(cfg.respawn_backoff(2), Duration::from_millis(2));
        assert_eq!(cfg.respawn_backoff(3), Duration::from_millis(4));
        assert_eq!(cfg.respawn_backoff(7), MAX_RESPAWN_BACKOFF);
        assert_eq!(cfg.respawn_backoff(60), MAX_RESPAWN_BACKOFF, "huge streaks stay capped");
    }

    #[test]
    fn panic_reason_renders_common_payloads() {
        assert_eq!(panic_reason(Box::new("static str")), "static str");
        assert_eq!(panic_reason(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_reason(Box::new(17usize)), "worker panicked with a non-string payload");
    }
}
