//! Deterministic cluster discrete-event simulation: N replica serving
//! pipelines behind a seeded consistent-hash front door, with fault
//! injection, on one shared virtual clock.
//!
//! Each replica is a full [`VirtualPipeline`] — its own lanes,
//! weighted-deficit scheduler, batcher, virtual workers and modeled
//! per-`(scene, precision)` model cache. The front door routes every
//! arrival by its coalescing key over a [`HashRing`] (scene affinity:
//! same key, same replica, warm cache, fat batches), skipping replicas
//! that are dead or at their inflight bound. A [`FaultPlan`] kills and
//! restarts replicas on the virtual clock: a kill orphans everything in
//! flight on that replica and the front door immediately re-routes the
//! orphans over the surviving ring (failover) or drops them; the
//! replica restarts with a cold cache.
//!
//! Everything that *decides* — routing, admission, scheduling, batching,
//! cache hits, fault handling — runs single-threaded in event order, so
//! for a fixed schedule and fault plan the cluster digest, per-replica
//! counters, cache ratios and latency histograms are byte-identical at
//! any `FNR_THREADS`; the decided batches then render for real over
//! `fnr_par` (or produce tiny synthetic hash payloads for
//! million-request runs). This extends the single-server `run_virtual`
//! equivalence methodology to a cluster; `--replicas 1` with no faults
//! reproduces `run_virtual` exactly (pinned in `tests/serve_equivalence.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultInjector;
use crate::metrics::{ClusterMetrics, LaneAccounting, ReplicaStats, RobustTotals, ServeMetrics};
use crate::request::{response_set_digest, synthetic_payload, Request, Response};
use crate::router::{HashRing, RouterConfig};
use crate::server::{execute_batch, ServerConfig};
use crate::vclock::VirtualPipeline;
use crate::workload::TimedJob;

/// Virtual service model for the cluster simulator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterService {
    /// Virtual time one batch occupies one virtual worker.
    pub service_ns: u64,
    /// Extra virtual time the *first* batch of a `(scene, precision)`
    /// model pays after a cold start (quantize + calibrate + upload);
    /// subsequent batches hit the replica's model cache.
    pub cold_start_ns: u64,
}

impl Default for ClusterService {
    fn default() -> Self {
        ClusterService { service_ns: 500_000, cold_start_ns: 2_000_000 }
    }
}

/// What a fault event does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash: orphan all in-flight work, reset scheduler/batcher state,
    /// drop the model cache. Ignored if the replica is already dead.
    Kill,
    /// Bring a dead replica back (cold). Ignored if already alive.
    Restart,
}

/// One scheduled fault on the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// Virtual time the fault fires.
    pub at_ns: u64,
    /// Target replica index.
    pub replica: usize,
    /// Kill or restart.
    pub kind: FaultKind,
}

/// A time-sorted schedule of replica faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan over the given events, sorted by time (stable, so
    /// same-instant events keep their listed order — a kill listed
    /// before a restart at the same tick stays kill-first).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_ns);
        FaultPlan { events }
    }

    /// Parses the CLI fault grammar: a comma-separated list of
    /// `kill@TIME:REPLICA` / `restart@TIME:REPLICA`, where `TIME` takes
    /// an `ns`/`us`/`ms`/`s` suffix — e.g.
    /// `kill@500ms:1,restart@900ms:1`. An empty string is no faults.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind_s, rest) = part.split_once('@').ok_or_else(|| {
                format!("fault `{part}`: expected KIND@TIME:REPLICA (e.g. `kill@500ms:1`)")
            })?;
            let kind = match kind_s {
                "kill" => FaultKind::Kill,
                "restart" => FaultKind::Restart,
                other => {
                    return Err(format!(
                        "fault `{part}`: unknown fault kind `{other}` (expected `kill` or `restart`)"
                    ))
                }
            };
            let (time_s, replica_s) = rest.split_once(':').ok_or_else(|| {
                format!("fault `{part}`: expected KIND@TIME:REPLICA (e.g. `kill@500ms:1`)")
            })?;
            let at_ns = parse_time_ns(time_s).ok_or_else(|| {
                format!(
                    "fault `{part}`: bad time `{time_s}` (expected an integer with an \
                     optional ns/us/ms/s suffix)"
                )
            })?;
            let replica: usize = replica_s.parse().map_err(|_| {
                format!("fault `{part}`: bad replica `{replica_s}` (expected a replica index)")
            })?;
            events.push(FaultEvent { at_ns, replica, kind });
        }
        Ok(FaultPlan::new(events))
    }

    /// A seeded random plan: `kills` kill events at uniform times in the
    /// middle of `[0, horizon_ns)`, each followed by a restart after a
    /// seeded downtime — the chaos suite's generator.
    pub fn seeded(seed: u64, replicas: usize, horizon_ns: u64, kills: usize) -> Self {
        let horizon = horizon_ns.max(1_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for _ in 0..kills {
            let replica = rng.gen_range(0usize..replicas.max(1));
            let at_ns = rng.gen_range(horizon / 10..horizon * 8 / 10);
            let downtime = rng.gen_range(horizon / 50..horizon / 8);
            events.push(FaultEvent { at_ns, replica, kind: FaultKind::Kill });
            events.push(FaultEvent { at_ns: at_ns + downtime, replica, kind: FaultKind::Restart });
        }
        FaultPlan::new(events)
    }

    /// The schedule, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Parses `500ms` / `250us` / `3s` / `1200ns` into nanoseconds. Shared
/// with the chaos-injector spec grammar ([`crate::fault::FaultInjector`]).
pub(crate) fn parse_time_ns(s: &str) -> Option<u64> {
    let (num, mul) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1)
    };
    num.parse::<u64>().ok().map(|v| v.saturating_mul(mul))
}

/// How decided batches turn into response bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Render for real through the production batch executor (pixels /
    /// table bytes) — the default, digest-compatible with the threaded
    /// server and `run_virtual`.
    Render,
    /// 16-byte deterministic hash payloads ([`synthetic_payload`]):
    /// the same purity and digest-equivalence contract at a cost that
    /// lets CI replay millions of requests.
    Synthetic,
}

impl PayloadMode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "render" => Some(PayloadMode::Render),
            "synthetic" => Some(PayloadMode::Synthetic),
            _ => None,
        }
    }
}

/// Cluster shape and policy.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Replica count (1..=128).
    pub replicas: usize,
    /// Per-replica server configuration (lanes, workers, batcher).
    pub server: ServerConfig,
    /// Consistent-hash ring shape.
    pub router: RouterConfig,
    /// Per-replica inflight bound: the front door walks past a replica
    /// holding this many un-terminated requests.
    pub max_inflight: usize,
    /// Virtual service model (per-batch cost + cache cold-start cost).
    pub service: ClusterService,
    /// Replica kill/restart schedule.
    pub faults: FaultPlan,
    /// Per-request chaos injection, shared with live mode: the same seeds
    /// poison the same requests in both. `None` falls back to the server
    /// config's injector.
    pub injector: Option<FaultInjector>,
    /// Real renders or synthetic hash payloads.
    pub payload: PayloadMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 4,
            server: ServerConfig::default(),
            router: RouterConfig::default(),
            max_inflight: 1024,
            service: ClusterService::default(),
            faults: FaultPlan::none(),
            injector: None,
            payload: PayloadMode::Render,
        }
    }
}

/// What [`run_cluster`] returns.
#[derive(Debug)]
pub struct ClusterReport {
    /// All responses served anywhere in the cluster, sorted by request id.
    pub responses: Vec<Response>,
    /// Cluster-wide and per-replica metrics.
    pub metrics: ClusterMetrics,
}

/// The mutable cluster state the event loop advances.
struct ClusterState<'c> {
    cfg: &'c ClusterConfig,
    ring: HashRing,
    pipes: Vec<VirtualPipeline>,
    alive: Vec<bool>,
    routed: Vec<usize>,
    failed_over_out: Vec<usize>,
    failed_over_in: Vec<usize>,
    kills: Vec<usize>,
    restarts: Vec<usize>,
    front_door_shed: usize,
    /// Index of the next unapplied fault in the sorted plan.
    next_fault: usize,
    /// Virtual time of the last event that touched a pipeline.
    last_event_ns: u64,
}

impl<'c> ClusterState<'c> {
    /// Picks the replica for `req_key_hash` that is alive and under its
    /// inflight bound, walking the ring clockwise.
    fn pick(&self, key_hash: u64) -> Option<usize> {
        let (alive, pipes, max) = (&self.alive, &self.pipes, self.cfg.max_inflight);
        self.ring.route(key_hash, |r| alive[r] && pipes[r].inflight() < max)
    }

    /// Fails an orphaned request over to a surviving replica (or drops it
    /// at the front door). The request keeps its original arrival time
    /// and deadline: time lost on the dead replica stays on its clock.
    fn reroute(&mut self, req: Request, t: u64, from: usize) {
        let key_hash = HashRing::key_hash(&req.job.key());
        match self.pick(key_hash) {
            Some(r) => {
                if self.pipes[r].admit_request(req, t) {
                    self.failed_over_in[r] += 1;
                    self.failed_over_out[from] += 1;
                }
                // A lane-full reject is already counted by the target
                // pipeline's admission accounting.
            }
            None => self.front_door_shed += 1,
        }
    }

    /// Applies one fault at its scheduled time.
    fn apply_fault(&mut self, ev: FaultEvent) {
        let r = ev.replica;
        if r >= self.pipes.len() {
            return; // plan may name more replicas than the cluster has
        }
        match ev.kind {
            FaultKind::Kill if self.alive[r] => {
                self.alive[r] = false;
                self.kills[r] += 1;
                self.last_event_ns = self.last_event_ns.max(ev.at_ns);
                for req in self.pipes[r].kill(ev.at_ns) {
                    self.reroute(req, ev.at_ns, r);
                }
            }
            FaultKind::Restart if !self.alive[r] => {
                // The pipeline was reset at kill time; it comes back
                // empty with a cold cache.
                self.alive[r] = true;
                self.restarts[r] += 1;
            }
            _ => {} // kill of a dead replica / restart of a live one: no-op
        }
    }

    /// Advances the cluster through every timer and fault up to `target`
    /// (faults win ties — a crash at `t` beats a linger flush at `t`).
    /// Returns the clock position (`target`, unless `target` is the
    /// drain sentinel `u64::MAX`, in which case the last event time).
    fn process_until(&mut self, target: u64, now: u64) -> u64 {
        let mut now = now;
        loop {
            let pipe_next = self
                .pipes
                .iter()
                .filter_map(|p| p.next_event(now))
                .min()
                .filter(|&t| t <= target);
            let fault_next = self
                .cfg
                .faults
                .events()
                .get(self.next_fault)
                .map(|e| e.at_ns)
                .filter(|&t| t <= target);
            let t = match (pipe_next, fault_next) {
                (None, None) => break,
                (a, b) => a.into_iter().chain(b).min().expect("one is Some"),
            };
            if fault_next == Some(t) {
                now = now.max(t);
                while let Some(&ev) = self.cfg.faults.events().get(self.next_fault) {
                    if ev.at_ns != t {
                        break;
                    }
                    self.next_fault += 1;
                    self.apply_fault(ev);
                }
                // Failover re-admissions (and survivors) pump at the
                // fault instant, in replica-index order.
                for i in 0..self.pipes.len() {
                    if self.alive[i] {
                        self.pipes[i].pump(t);
                    }
                }
            } else {
                // Fire this tick on every pipe that owns it, in index
                // order; pipes never interact within one tick.
                for i in 0..self.pipes.len() {
                    if self.pipes[i].next_event(now) == Some(t) {
                        self.pipes[i].fire(t);
                    }
                }
                now = now.max(t);
                self.last_event_ns = self.last_event_ns.max(t);
            }
        }
        if target == u64::MAX {
            now
        } else {
            target.max(now)
        }
    }
}

/// Replays `jobs` through an N-replica cluster on the virtual clock and
/// renders the decided batches. See the module docs for the model; see
/// [`ClusterMetrics::conserves_submitted`] for the accounting law the
/// result is guaranteed (and asserted) to satisfy.
pub fn run_cluster(cfg: &ClusterConfig, jobs: &[TimedJob]) -> ClusterReport {
    cfg.server.sched.validate();
    let replicas = cfg.replicas.max(1);
    let mut state = ClusterState {
        ring: HashRing::new(replicas, &cfg.router),
        pipes: (0..replicas)
            .map(|_| {
                VirtualPipeline::with_injector(
                    &cfg.server,
                    cfg.service.service_ns,
                    cfg.service.cold_start_ns,
                    true,
                    cfg.injector.or(cfg.server.injector),
                )
            })
            .collect(),
        alive: vec![true; replicas],
        routed: vec![0; replicas],
        failed_over_out: vec![0; replicas],
        failed_over_in: vec![0; replicas],
        kills: vec![0; replicas],
        restarts: vec![0; replicas],
        front_door_shed: 0,
        next_fault: 0,
        last_event_ns: 0,
        cfg,
    };

    // The decision loop: single-threaded, in trace order.
    let mut now = 0u64;
    for (id, tj) in jobs.iter().enumerate() {
        let at = now + tj.delay_before.as_nanos() as u64;
        now = state.process_until(at, now);
        state.last_event_ns = state.last_event_ns.max(at);
        let key_hash = HashRing::key_hash(&tj.job.key());
        match state.pick(key_hash) {
            Some(r) => {
                state.routed[r] += 1;
                state.pipes[r].admit(id as u64, at, tj);
                state.pipes[r].pump(at);
            }
            None => state.front_door_shed += 1,
        }
    }
    // Drain: remaining timers and faults, to quiescence.
    let end = state.process_until(u64::MAX, now);
    let wall_ns = state.last_event_ns.max(end);
    for pipe in &mut state.pipes {
        pipe.finalize(wall_ns);
    }

    // Decisions locked in — produce payloads. Per replica, fan the
    // decided batches out over `fnr_par`; thread width moves wall time
    // only.
    let threads = fnr_par::current_num_threads();
    let workers = cfg.server.workers.max(1);
    let mut all_responses: Vec<Response> = Vec::new();
    let mut replica_stats: Vec<ReplicaStats> = Vec::new();
    for (i, pipe) in state.pipes.iter().enumerate() {
        let nested: Vec<Vec<Response>> = match cfg.payload {
            PayloadMode::Render => {
                fnr_par::par_map(&pipe.decided, |batch| execute_batch(batch, &cfg.server.tables))
            }
            PayloadMode::Synthetic => fnr_par::par_map(&pipe.decided, |batch| {
                batch
                    .requests
                    .iter()
                    .map(|req| Response { id: req.id, bytes: synthetic_payload(&req.job) })
                    .collect()
            }),
        };
        let mut responses: Vec<Response> = nested.into_iter().flatten().collect();
        responses.sort_unstable_by_key(|r| r.id);
        let lane_acct: Vec<LaneAccounting> = cfg
            .server
            .sched
            .lanes
            .iter()
            .zip(&pipe.rejected)
            .map(|(l, &rej)| LaneAccounting { name: l.name.clone(), weight: l.weight, rejected: rej })
            .collect();
        let metrics = ServeMetrics::aggregate(
            &pipe.request_metrics,
            &pipe.batch_metrics,
            &pipe.shed_metrics,
            &pipe.fail_metrics,
            &[],
            &responses,
            &lane_acct,
            RobustTotals::default(),
            pipe.wall_ns,
            workers,
            threads,
        );
        let (cache_hits, cache_misses) = pipe.cache_stats();
        replica_stats.push(ReplicaStats {
            replica: i,
            alive: state.alive[i],
            kills: state.kills[i],
            restarts: state.restarts[i],
            routed: state.routed[i],
            failed_over_out: state.failed_over_out[i],
            failed_over_in: state.failed_over_in[i],
            cache_hits,
            cache_misses,
            busy_ns: pipe.busy_ns,
            metrics,
        });
        all_responses.extend(responses);
    }
    all_responses.sort_unstable_by_key(|r| r.id);
    let digest = response_set_digest(&all_responses);
    let metrics = ClusterMetrics::aggregate(
        replica_stats,
        jobs.len(),
        state.front_door_shed,
        wall_ns,
        workers,
        threads,
        digest,
    );
    assert!(
        metrics.conserves_submitted(),
        "request conservation violated: served {} + shed {} + rejected {} + failed {} + front door {} != submitted {}",
        metrics.served,
        metrics.shed,
        metrics.rejected,
        metrics.failed,
        metrics.front_door_shed,
        metrics.submitted
    );
    ClusterReport { responses: all_responses, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, ArrivalPattern, WorkloadSpec};
    use std::time::Duration;

    fn spec(requests: usize, pattern: ArrivalPattern) -> WorkloadSpec {
        WorkloadSpec {
            requests,
            pattern,
            mean_gap: Duration::from_micros(30),
            deadline: Some(Duration::from_millis(8)),
            ..WorkloadSpec::default()
        }
    }

    fn synth_cfg(replicas: usize) -> ClusterConfig {
        ClusterConfig { replicas, payload: PayloadMode::Synthetic, ..ClusterConfig::default() }
    }

    #[test]
    fn fault_plan_parses_and_sorts() {
        let plan = FaultPlan::parse("restart@900ms:1, kill@500ms:1").expect("valid");
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, FaultKind::Kill);
        assert_eq!(evs[0].at_ns, 500_000_000);
        assert_eq!(evs[1].kind, FaultKind::Restart);
        assert_eq!(evs[1].at_ns, 900_000_000);
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("explode@1s:0").is_err());
        assert!(FaultPlan::parse("kill@xyz:0").is_err());
        assert!(FaultPlan::parse("kill@1s").is_err());
    }

    #[test]
    fn fault_plan_parse_errors_are_descriptive() {
        // Empty / whitespace / dangling-comma specs are "no faults", not
        // errors — the CLI default is an empty string.
        assert!(FaultPlan::parse("   ").expect("whitespace ok").is_empty());
        assert!(FaultPlan::parse("kill@1ms:0,").expect("trailing comma ok").events().len() == 1);
        // Unknown op: the message names the bad kind and the alternatives.
        let e = FaultPlan::parse("explode@1s:0").unwrap_err();
        assert!(e.contains("unknown fault kind `explode`") && e.contains("`kill` or `restart`"), "{e}");
        // Bad duration: the message names the bad time and the grammar.
        let e = FaultPlan::parse("kill@12parsecs:0").unwrap_err();
        assert!(e.contains("bad time `12parsecs`") && e.contains("ns/us/ms/s"), "{e}");
        let e = FaultPlan::parse("kill@:0").unwrap_err();
        assert!(e.contains("bad time ``"), "{e}");
        // Structural errors echo the expected shape with an example.
        let e = FaultPlan::parse("kill").unwrap_err();
        assert!(e.contains("KIND@TIME:REPLICA") && e.contains("kill@500ms:1"), "{e}");
        let e = FaultPlan::parse("kill@1s").unwrap_err();
        assert!(e.contains("KIND@TIME:REPLICA"), "{e}");
        // Bad replica index.
        let e = FaultPlan::parse("kill@1s:minus-one").unwrap_err();
        assert!(e.contains("bad replica `minus-one`"), "{e}");
        // One bad element poisons the whole spec (no partial plans).
        assert!(FaultPlan::parse("kill@1ms:0,bogus").is_err());
    }

    #[test]
    fn time_suffixes_parse() {
        assert_eq!(parse_time_ns("1200ns"), Some(1_200));
        assert_eq!(parse_time_ns("250us"), Some(250_000));
        assert_eq!(parse_time_ns("500ms"), Some(500_000_000));
        assert_eq!(parse_time_ns("3s"), Some(3_000_000_000));
        assert_eq!(parse_time_ns("77"), Some(77));
        assert_eq!(parse_time_ns("soon"), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_kill_restart_paired() {
        let a = FaultPlan::seeded(7, 8, 1_000_000_000, 3);
        let b = FaultPlan::seeded(7, 8, 1_000_000_000, 3);
        assert_eq!(a.events().len(), 6);
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!((x.at_ns, x.replica, x.kind), (y.at_ns, y.replica, y.kind));
        }
        let kills = a.events().iter().filter(|e| e.kind == FaultKind::Kill).count();
        assert_eq!(kills, 3);
    }

    #[test]
    fn cluster_without_faults_serves_everything_or_accounts_for_it() {
        let jobs = generate(&spec(300, ArrivalPattern::Bursty));
        let report = run_cluster(&synth_cfg(4), &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.submitted, 300);
        assert_eq!(m.kills, 0);
        assert_eq!(m.failed_over, 0);
        assert!(m.served > 0);
        assert_eq!(report.responses.len(), m.served);
        // Scene affinity: each coalescing key is served by exactly one
        // replica, so the number of replicas that saw traffic is bounded
        // by the number of distinct keys but at least one.
        assert!(m.replicas.iter().any(|r| r.routed > 0));
    }

    #[test]
    fn kill_fails_over_and_restart_comes_back_cold() {
        let jobs = generate(&spec(600, ArrivalPattern::Bursty));
        // Kill every replica but 0 early, restart later: traffic must
        // fail over to replica 0 and the restarted replicas' caches
        // re-miss.
        let faults = FaultPlan::parse("kill@2ms:1,kill@2ms:2,kill@2ms:3,restart@9ms:1,restart@9ms:2,restart@9ms:3")
            .expect("valid");
        let cfg = ClusterConfig { faults, ..synth_cfg(4) };
        let report = run_cluster(&cfg, &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.kills, 3);
        assert_eq!(m.restarts, 3);
        assert!(m.replicas.iter().all(|r| r.alive), "everyone restarted");
        // Identical replay.
        let again = run_cluster(&cfg, &jobs);
        assert_eq!(m.digest, again.metrics.digest);
        assert_eq!(m.served, again.metrics.served);
        assert_eq!(m.failed_over, again.metrics.failed_over);
    }

    #[test]
    fn single_dead_cluster_sheds_everything_at_the_front_door() {
        let jobs = generate(&spec(50, ArrivalPattern::Uniform));
        let faults = FaultPlan::parse("kill@0ns:0").expect("valid");
        let cfg = ClusterConfig { replicas: 1, faults, ..synth_cfg(1) };
        let report = run_cluster(&cfg, &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.served, 0);
        assert_eq!(m.front_door_shed, 50);
        assert!(report.responses.is_empty());
    }

    #[test]
    fn cold_start_cost_is_observable_in_service_times() {
        let jobs = generate(&spec(80, ArrivalPattern::Bursty));
        let cheap = ClusterConfig {
            service: ClusterService { service_ns: 100_000, cold_start_ns: 0 },
            ..synth_cfg(2)
        };
        let costly = ClusterConfig {
            service: ClusterService { service_ns: 100_000, cold_start_ns: 50_000_000 },
            ..synth_cfg(2)
        };
        let a = run_cluster(&cheap, &jobs);
        let b = run_cluster(&costly, &jobs);
        assert!(
            b.metrics.wall_ns > a.metrics.wall_ns,
            "cold starts must cost virtual time: {} vs {}",
            b.metrics.wall_ns,
            a.metrics.wall_ns
        );
        let misses: u64 = b.metrics.replicas.iter().map(|r| r.cache_misses).sum();
        let hits: u64 = b.metrics.replicas.iter().map(|r| r.cache_hits).sum();
        assert!(misses > 0, "first batch of each render key misses");
        assert!(hits > 0, "affinity keeps later batches warm");
    }
}
