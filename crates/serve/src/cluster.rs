//! Deterministic cluster discrete-event simulation: N replica serving
//! pipelines behind a seeded consistent-hash front door, with fault
//! injection, on one shared virtual clock.
//!
//! Each replica is a full [`VirtualPipeline`] — its own lanes,
//! weighted-deficit scheduler, batcher, virtual workers and modeled
//! per-`(scene, precision)` model cache. The front door routes every
//! arrival by its coalescing key over a [`HashRing`] (scene affinity:
//! same key, same replica, warm cache, fat batches), skipping replicas
//! that are dead or at their inflight bound. A [`FaultPlan`] kills and
//! restarts replicas on the virtual clock: a kill orphans everything in
//! flight on that replica and the front door immediately re-routes the
//! orphans over the surviving ring (failover) or drops them; the
//! replica restarts with a cold cache.
//!
//! Everything that *decides* — routing, admission, scheduling, batching,
//! cache hits, fault handling — runs single-threaded in event order, so
//! for a fixed schedule and fault plan the cluster digest, per-replica
//! counters, cache ratios and latency histograms are byte-identical at
//! any `FNR_THREADS`; the decided batches then render for real over
//! `fnr_par` (or produce tiny synthetic hash payloads for
//! million-request runs). This extends the single-server `run_virtual`
//! equivalence methodology to a cluster; `--replicas 1` with no faults
//! reproduces `run_virtual` exactly (pinned in `tests/serve_equivalence.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultInjector;
use crate::health::{AdmissionConfig, CoDelAdmission, HealthConfig, HealthDetector, HealthState, HedgeConfig};
use crate::metrics::{
    ClusterMetrics, FailMetric, FrontDoorTotals, LaneAccounting, ReplicaStats, RobustTotals,
    ServeMetrics, ShedMetric,
};
use crate::request::{
    assemble_chunks, effective_chunks, response_set_digest, synthetic_chunk_payload, ChunkResponse,
    ChunkSpan, Request, Response,
};
use crate::router::{HashRing, RouterConfig};
use crate::server::{execute_batch, ServerConfig};
use crate::vclock::{PipeEvent, VirtualPipeline};
use crate::workload::TimedJob;

/// Virtual service model for the cluster simulator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterService {
    /// Virtual time one batch occupies one virtual worker.
    pub service_ns: u64,
    /// Size-aware cost: extra virtual time per batch *member*, so a fat
    /// batch costs more than a singleton. Zero (the default) reproduces
    /// the flat per-batch model exactly.
    pub per_item_ns: u64,
    /// Extra virtual time the *first* batch of a `(scene, precision)`
    /// model pays after a cold start (quantize + calibrate + upload);
    /// subsequent batches hit the replica's model cache.
    pub cold_start_ns: u64,
}

impl Default for ClusterService {
    fn default() -> Self {
        ClusterService { service_ns: 500_000, per_item_ns: 0, cold_start_ns: 2_000_000 }
    }
}

/// What a fault event does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash: orphan all in-flight work, reset scheduler/batcher state,
    /// drop the model cache. Ignored if the replica is already dead.
    Kill,
    /// Bring a dead (or departed) replica back (cold), rejoining the
    /// ring if it had left. Ignored if already alive.
    Restart,
    /// Gray failure: multiply the replica's virtual service times by
    /// `factor` from this instant on (factor 1 restores nominal speed).
    /// The replica stays alive and keeps accepting work — exactly the
    /// failure the health detector exists to catch.
    Slow {
        /// Service-time multiplier (≥ 1).
        factor: u32,
    },
    /// Scale-out: add a brand-new replica (next free index, cold cache)
    /// to the cluster and the ring. The event's `replica` field is
    /// ignored — a join always takes the next index.
    Join,
    /// Graceful scale-in: the replica leaves the ring immediately,
    /// admits nothing new, finishes everything in flight, then departs.
    Leave,
}

/// One scheduled fault on the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// Virtual time the fault fires.
    pub at_ns: u64,
    /// Target replica index.
    pub replica: usize,
    /// Kill or restart.
    pub kind: FaultKind,
}

/// A time-sorted schedule of replica faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan over the given events, sorted by time (stable, so
    /// same-instant events keep their listed order — a kill listed
    /// before a restart at the same tick stays kill-first).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_ns);
        FaultPlan { events }
    }

    /// Parses the CLI fault grammar: a comma-separated list of
    /// `kill@TIME:REPLICA` / `restart@TIME:REPLICA` /
    /// `slow@TIME:REPLICA:FACTOR` / `join@TIME` / `leave@TIME:REPLICA`,
    /// where `TIME` takes an `ns`/`us`/`ms`/`s` suffix — e.g.
    /// `kill@500ms:1,restart@900ms:1,slow@1s:2:8,join@2s,leave@3s:0`.
    /// An empty string is no faults.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        let mut left = Vec::new();
        let mut joins = 0usize;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind_s, rest) = part.split_once('@').ok_or_else(|| {
                format!("fault `{part}`: expected KIND@TIME:REPLICA (e.g. `kill@500ms:1`)")
            })?;
            let bad_time = |time_s: &str| {
                format!(
                    "fault `{part}`: bad time `{time_s}` (expected an integer with an \
                     optional ns/us/ms/s suffix)"
                )
            };
            let bad_replica = |replica_s: &str| {
                format!("fault `{part}`: bad replica `{replica_s}` (expected a replica index)")
            };
            let time_replica = |shape: &str| {
                let (time_s, replica_s) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("fault `{part}`: expected {shape}"))?;
                let at_ns = parse_time_ns(time_s).ok_or_else(|| bad_time(time_s))?;
                Ok::<(u64, &str), String>((at_ns, replica_s))
            };
            let (at_ns, replica, kind) = match kind_s {
                "kill" | "restart" | "leave" => {
                    let (at_ns, replica_s) =
                        time_replica(&format!("{kind_s}@TIME:REPLICA (e.g. `{kind_s}@500ms:1`)"))?;
                    let replica: usize =
                        replica_s.parse().map_err(|_| bad_replica(replica_s))?;
                    let kind = match kind_s {
                        "kill" => FaultKind::Kill,
                        "restart" => FaultKind::Restart,
                        _ => {
                            if left.contains(&replica) {
                                return Err(format!(
                                    "fault `{part}`: replica {replica} already has a `leave` \
                                     event (a replica can leave at most once)"
                                ));
                            }
                            left.push(replica);
                            FaultKind::Leave
                        }
                    };
                    (at_ns, replica, kind)
                }
                "slow" => {
                    let (at_ns, rest_s) =
                        time_replica("slow@TIME:REPLICA:FACTOR (e.g. `slow@500ms:1:8`)")?;
                    let (replica_s, factor_s) = rest_s.split_once(':').ok_or_else(|| {
                        format!(
                            "fault `{part}`: expected slow@TIME:REPLICA:FACTOR \
                             (e.g. `slow@500ms:1:8`)"
                        )
                    })?;
                    let replica: usize =
                        replica_s.parse().map_err(|_| bad_replica(replica_s))?;
                    let factor: u32 = factor_s.parse().ok().filter(|&f| f >= 1).ok_or_else(|| {
                        format!(
                            "fault `{part}`: bad slow factor `{factor_s}` (expected an \
                             integer ≥ 1; 1 restores nominal speed)"
                        )
                    })?;
                    (at_ns, replica, FaultKind::Slow { factor })
                }
                "join" => {
                    if rest.contains(':') {
                        return Err(format!(
                            "fault `{part}`: expected join@TIME (a join always adds the next \
                             replica index — it takes no replica argument)"
                        ));
                    }
                    let at_ns = parse_time_ns(rest).ok_or_else(|| bad_time(rest))?;
                    joins += 1;
                    if joins > crate::router::MAX_REPLICAS {
                        return Err(format!(
                            "fault `{part}`: {joins} `join` events exceed the ring capacity \
                             of {} replicas",
                            crate::router::MAX_REPLICAS
                        ));
                    }
                    (at_ns, usize::MAX, FaultKind::Join)
                }
                other => {
                    return Err(format!(
                        "fault `{part}`: unknown fault kind `{other}` (expected `kill`, \
                         `restart`, `slow`, `join` or `leave`)"
                    ))
                }
            };
            events.push(FaultEvent { at_ns, replica, kind });
        }
        Ok(FaultPlan::new(events))
    }

    /// Number of `join` (scale-out) events in the plan.
    pub fn joins(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, FaultKind::Join)).count()
    }

    /// Checks the plan against a concrete cluster size: the base replica
    /// count plus every scale-out join must fit the ring. The CLI calls
    /// this before a run so the error points at the plan, not at a panic
    /// deep in the simulator.
    pub fn validate_for(&self, base_replicas: usize) -> Result<(), String> {
        let joins = self.joins();
        if base_replicas.saturating_add(joins) > crate::router::MAX_REPLICAS {
            return Err(format!(
                "fault plan: {base_replicas} base replicas + {joins} `join` events exceed \
                 the ring capacity of {} replicas",
                crate::router::MAX_REPLICAS
            ));
        }
        Ok(())
    }

    /// A seeded random plan: `kills` kill events at uniform times in the
    /// middle of `[0, horizon_ns)`, each followed by a restart after a
    /// seeded downtime — the chaos suite's generator.
    pub fn seeded(seed: u64, replicas: usize, horizon_ns: u64, kills: usize) -> Self {
        let horizon = horizon_ns.max(1_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for _ in 0..kills {
            let replica = rng.gen_range(0usize..replicas.max(1));
            let at_ns = rng.gen_range(horizon / 10..horizon * 8 / 10);
            let downtime = rng.gen_range(horizon / 50..horizon / 8);
            events.push(FaultEvent { at_ns, replica, kind: FaultKind::Kill });
            events.push(FaultEvent { at_ns: at_ns + downtime, replica, kind: FaultKind::Restart });
        }
        FaultPlan::new(events)
    }

    /// The schedule, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Parses `500ms` / `250us` / `3s` / `1200ns` into nanoseconds. Shared
/// with the chaos-injector spec grammar ([`crate::fault::FaultInjector`]).
pub(crate) fn parse_time_ns(s: &str) -> Option<u64> {
    let (num, mul) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1)
    };
    num.parse::<u64>().ok().map(|v| v.saturating_mul(mul))
}

/// How decided batches turn into response bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Render for real through the production batch executor (pixels /
    /// table bytes) — the default, digest-compatible with the threaded
    /// server and `run_virtual`.
    Render,
    /// 16-byte deterministic hash payloads ([`synthetic_payload`]):
    /// the same purity and digest-equivalence contract at a cost that
    /// lets CI replay millions of requests.
    Synthetic,
}

impl PayloadMode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "render" => Some(PayloadMode::Render),
            "synthetic" => Some(PayloadMode::Synthetic),
            _ => None,
        }
    }
}

/// Cluster shape and policy.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Replica count (1..=128).
    pub replicas: usize,
    /// Per-replica server configuration (lanes, workers, batcher).
    pub server: ServerConfig,
    /// Consistent-hash ring shape.
    pub router: RouterConfig,
    /// Per-replica inflight bound: the front door walks past a replica
    /// holding this many un-terminated requests.
    pub max_inflight: usize,
    /// Virtual service model (per-batch cost + cache cold-start cost).
    pub service: ClusterService,
    /// Replica kill/restart schedule.
    pub faults: FaultPlan,
    /// Per-request chaos injection, shared with live mode: the same seeds
    /// poison the same requests in both. `None` falls back to the server
    /// config's injector.
    pub injector: Option<FaultInjector>,
    /// Real renders or synthetic hash payloads.
    pub payload: PayloadMode,
    /// Failure detector (gray-failure suspicion scoring). Disabled by
    /// default: routing is byte-identical to the pre-detector cluster.
    pub health: HealthConfig,
    /// Hedged-request policy. Disabled by default (`delay_ns ==
    /// u64::MAX`): the disabled path reproduces pre-hedging digests
    /// exactly.
    pub hedge: HedgeConfig,
    /// CoDel-style overload admission at the front door. Disabled by
    /// default.
    pub admission: AdmissionConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 4,
            server: ServerConfig::default(),
            router: RouterConfig::default(),
            max_inflight: 1024,
            service: ClusterService::default(),
            faults: FaultPlan::none(),
            injector: None,
            payload: PayloadMode::Render,
            health: HealthConfig::default(),
            hedge: HedgeConfig::disabled(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// What [`run_cluster`] returns.
#[derive(Debug)]
pub struct ClusterReport {
    /// All responses served anywhere in the cluster, sorted by request id.
    pub responses: Vec<Response>,
    /// Cluster-wide and per-replica metrics.
    pub metrics: ClusterMetrics,
}

/// A replica's lifecycle in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Life {
    /// Alive and (unless it left the ring) taking work.
    Up,
    /// Left the ring gracefully (`leave@T:R`): admits nothing new,
    /// finishes everything in flight.
    Draining,
    /// Finished draining after a leave: idle, out of the ring.
    Departed,
    /// Crashed (fault-plan kill).
    Down,
}

/// One request chunk the hedging arbiter is tracking: where its live
/// copies are and what its hedge status is. Exactly one terminal record
/// is committed per tracked chunk, no matter how many copies raced.
struct Tracked {
    /// A clone of the admitted chunk request, for hedge placement.
    req: Request,
    /// Replicas currently holding a live copy (one or two entries).
    copies: Vec<usize>,
    /// Whether any copy has started service — a started chunk is not
    /// worth hedging, the work is already running.
    started: bool,
    /// Whether a hedge clone was placed (each chunk hedges at most
    /// once; `hedged == hedge_won + hedge_wasted` is an invariant).
    hedged: bool,
    /// The hedge clone's replica, if placed.
    clone_replica: Option<usize>,
}

/// The mutable cluster state the event loop advances.
struct ClusterState<'c> {
    cfg: &'c ClusterConfig,
    /// Real-clock origin requests' `submitted_at` instants are rendered
    /// onto; never a measurement.
    epoch: Instant,
    ring: HashRing,
    pipes: Vec<VirtualPipeline>,
    life: Vec<Life>,
    /// Whether each replica currently owns ring points (a leave removes
    /// them, a restart-after-leave or join adds them back).
    in_ring: Vec<bool>,
    routed: Vec<usize>,
    failed_over_out: Vec<usize>,
    failed_over_in: Vec<usize>,
    kills: Vec<usize>,
    restarts: Vec<usize>,
    suspects: Vec<usize>,
    front_door_shed: usize,
    overload_shed: usize,
    hedged: usize,
    hedge_won: usize,
    hedge_wasted: usize,
    joins: usize,
    leaves: usize,
    /// Replicas currently in `Life::Draining` (gates the drain check).
    draining: usize,
    health: HealthDetector,
    codel: CoDelAdmission,
    /// Whether pipelines emit [`PipeEvent`]s (any resilience feature on).
    track: bool,
    /// Whether hedging is on (implies `track`).
    hedging: bool,
    /// Hedge-arbitrated chunks by `(id, chunk index)` (`BTreeMap` so
    /// suspect-triggered hedges fire in deterministic id-then-chunk
    /// order).
    tracked: BTreeMap<(u64, u32), Tracked>,
    /// Pending hedge timers `(due_ns, (id, chunk))` — arrivals are
    /// monotone, so this stays sorted by construction.
    hedge_timers: VecDeque<(u64, (u64, u32))>,
    /// Index of the next unapplied fault in the sorted plan.
    next_fault: usize,
    /// Virtual time of the last event that touched a pipeline.
    last_event_ns: u64,
}

/// Builds one replica pipeline for `cfg` (cold cache, nominal speed).
fn new_pipe(cfg: &ClusterConfig, track: bool) -> VirtualPipeline {
    let mut pipe = VirtualPipeline::with_injector(
        &cfg.server,
        cfg.service.service_ns,
        cfg.service.cold_start_ns,
        true,
        cfg.injector.or(cfg.server.injector),
    );
    pipe.set_per_item_ns(cfg.service.per_item_ns);
    if track {
        pipe.enable_event_tracking();
    }
    pipe
}

impl<'c> ClusterState<'c> {
    /// Whether the front door may send work to replica `r` at all.
    fn routable(&self, r: usize) -> bool {
        self.life[r] == Life::Up && self.pipes[r].inflight() < self.cfg.max_inflight
    }

    /// Picks the replica for `key_hash`, walking the ring clockwise.
    /// With the failure detector on this is a three-pass preference:
    /// Healthy replicas first, then Suspect, then anything routable —
    /// gray failures lose traffic without ever making the cluster
    /// refuse work it could still do.
    fn pick(&self, key_hash: u64, now: u64) -> Option<usize> {
        if !self.health.enabled() {
            return self.ring.route(key_hash, |r| self.routable(r));
        }
        self.ring
            .route(key_hash, |r| {
                self.routable(r) && self.health.state(r, now) == HealthState::Healthy
            })
            .or_else(|| {
                self.ring.route(key_hash, |r| {
                    self.routable(r) && self.health.state(r, now) < HealthState::Dead
                })
            })
            .or_else(|| self.ring.route(key_hash, |r| self.routable(r)))
    }

    /// Picks a hedge target for `key_hash`: the same three-pass walk,
    /// excluding the primary copy's replica.
    fn pick_hedge(&self, key_hash: u64, now: u64, primary: usize) -> Option<usize> {
        let ok = |r: usize| r != primary && self.routable(r);
        if !self.health.enabled() {
            return self.ring.route(key_hash, ok);
        }
        self.ring
            .route(key_hash, |r| ok(r) && self.health.state(r, now) == HealthState::Healthy)
            .or_else(|| {
                self.ring
                    .route(key_hash, |r| ok(r) && self.health.state(r, now) < HealthState::Dead)
            })
            .or_else(|| self.ring.route(key_hash, ok))
    }

    /// A tracked chunk's terminal happened outside any pipeline (front
    /// door drop or lane-full reject on failover): close its book.
    fn settle_terminal(&mut self, key: (u64, u32)) {
        if let Some(tr) = self.tracked.remove(&key) {
            if tr.hedged {
                self.hedge_wasted += 1;
            }
        }
    }

    /// Fails an orphaned chunk over to a surviving replica (or drops it
    /// at the front door). The chunk keeps its original arrival time
    /// and deadline: time lost on the dead replica stays on its clock.
    /// Only unserved chunks ever reach here — a kill cannot orphan (and
    /// this cannot re-admit) a chunk whose completion already committed.
    fn reroute(&mut self, req: Request, t: u64, from: usize) {
        let key = (req.id, req.chunk.index);
        let chunk = req.chunk;
        let key_hash = HashRing::key_hash(&req.job.key());
        match self.pick(key_hash, t) {
            Some(r) => {
                if self.pipes[r].admit_request(req, t) {
                    self.failed_over_in[r] += 1;
                    self.failed_over_out[from] += 1;
                    if self.hedging {
                        self.pipes[r].mark_hedged(key.0, chunk.index);
                        if let Some(tr) = self.tracked.get_mut(&key) {
                            tr.copies.retain(|&c| c != from);
                            tr.copies.push(r);
                        }
                    }
                } else if self.hedging {
                    // A lane-full reject is counted by the target
                    // pipeline's admission accounting — that is the
                    // chunk's terminal.
                    self.settle_terminal(key);
                }
                // (Without hedging the reject is likewise already
                // counted by the target pipeline.)
            }
            None => {
                self.front_door_shed += 1;
                if self.hedging {
                    self.settle_terminal(key);
                }
            }
        }
    }

    /// The last live copy of a tracked chunk shed or failed on replica
    /// `r`: commit the terminal record there. While another copy is
    /// live, a copy's loss records nothing — the survivor owns the
    /// chunk.
    fn settle_loss(&mut self, r: usize, key: (u64, u32), lane: usize, queue_ns: u64, failed: bool) {
        let Some(tr) = self.tracked.get_mut(&key) else { return };
        tr.copies.retain(|&c| c != r);
        if !tr.copies.is_empty() {
            return;
        }
        if failed {
            self.pipes[r].fail_metrics.push(FailMetric { id: key.0, lane, queue_ns });
        } else {
            self.pipes[r].shed_metrics.push(ShedMetric { id: key.0, lane, queue_ns });
        }
        self.settle_terminal(key);
    }

    /// Drains replica `r`'s pipeline events at time `t`: feeds the CoDel
    /// controller (queue delays at service start), arbitrates hedge
    /// copies (first completion wins, losers are cancelled or
    /// suppressed), and gives the failure detector its heartbeat
    /// observation. Called after every fire/pump of `r`, so same-tick
    /// races resolve in replica-index order — deterministically.
    fn drain_events(&mut self, r: usize, t: u64) {
        if !self.track {
            return;
        }
        let events = self.pipes[r].take_events();
        let mut progressed = false;
        for ev in events {
            match ev {
                PipeEvent::Started { id, chunk, queue_ns } => {
                    self.codel.observe(r, queue_ns, t);
                    if let Some(tr) = self.tracked.get_mut(&(id, chunk)) {
                        tr.started = true;
                    }
                }
                PipeEvent::Completed { id, chunk } => {
                    progressed = true;
                    if let Some(tr) = self.tracked.remove(&(id, chunk)) {
                        for &other in tr.copies.iter().filter(|&&c| c != r) {
                            // The losing copy is pulled from its queue,
                            // or suppressed if already in service.
                            self.pipes[other].cancel(id, tr.req.chunk);
                        }
                        if tr.hedged {
                            if Some(r) == tr.clone_replica {
                                self.hedge_won += 1;
                            } else {
                                self.hedge_wasted += 1;
                            }
                        }
                    }
                }
                PipeEvent::Shed { id, chunk, lane, queue_ns } => {
                    self.settle_loss(r, (id, chunk), lane, queue_ns, false)
                }
                PipeEvent::Failed { id, chunk, lane, queue_ns } => {
                    self.settle_loss(r, (id, chunk), lane, queue_ns, true)
                }
            }
        }
        self.health.observe(r, self.pipes[r].is_busy(), progressed, t);
    }

    /// Places a hedge clone for the tracked chunk `key` if it is still
    /// worth it (un-started, un-hedged, single copy). Returns whether a
    /// clone was placed.
    fn fire_hedge(&mut self, key: (u64, u32), t: u64) -> bool {
        let Some(tr) = self.tracked.get(&key) else { return false };
        if tr.started || tr.clone_replica.is_some() || tr.copies.len() != 1 {
            return false;
        }
        let primary = tr.copies[0];
        let key_hash = HashRing::key_hash(&tr.req.job.key());
        let Some(r2) = self.pick_hedge(key_hash, t, primary) else { return false };
        let req = tr.req.clone();
        if !self.pipes[r2].admit_hedge(req, t) {
            // No lane room on the alternate: the clone never existed.
            return false;
        }
        self.pipes[r2].mark_hedged(key.0, key.1);
        let tr = self.tracked.get_mut(&key).expect("still tracked");
        tr.hedged = true;
        tr.clone_replica = Some(r2);
        tr.copies.push(r2);
        self.hedged += 1;
        self.last_event_ns = self.last_event_ns.max(t);
        self.pipes[r2].pump(t);
        self.drain_events(r2, t);
        true
    }

    /// Hedges every pending un-started chunk whose only copy sits on
    /// `r` — fired the instant the detector turns `r` Suspect, in
    /// id-then-chunk order (deterministic by `BTreeMap` iteration).
    fn hedge_suspect_replica(&mut self, r: usize, t: u64) {
        let keys: Vec<(u64, u32)> = self
            .tracked
            .iter()
            .filter(|(_, tr)| {
                !tr.started
                    && tr.clone_replica.is_none()
                    && tr.copies.len() == 1
                    && tr.copies[0] == r
            })
            .map(|(&key, _)| key)
            .collect();
        for key in keys {
            self.fire_hedge(key, t);
        }
    }

    /// Re-scores every replica at `t`, counting `Healthy → Suspect`
    /// crossings once and hedging the suspect's pending work.
    fn refresh_health(&mut self, t: u64) {
        if !self.health.enabled() {
            return;
        }
        for r in 0..self.pipes.len() {
            if let Some((old, new)) = self.health.refresh(r, t) {
                if old == HealthState::Healthy && new >= HealthState::Suspect {
                    self.suspects[r] += 1;
                    if self.hedging {
                        self.hedge_suspect_replica(r, t);
                    }
                }
            }
        }
    }

    /// Promotes drained leavers: a `Draining` replica with nothing
    /// pending becomes `Departed`.
    fn settle_drained(&mut self) {
        if self.draining == 0 {
            return;
        }
        for r in 0..self.pipes.len() {
            if self.life[r] == Life::Draining && !self.pipes[r].has_pending() {
                self.life[r] = Life::Departed;
                self.draining -= 1;
            }
        }
    }

    /// Applies one fault at its scheduled time.
    fn apply_fault(&mut self, ev: FaultEvent) {
        if matches!(ev.kind, FaultKind::Join) {
            // Scale-out: a brand-new replica at the next index, cold.
            if self.pipes.len() >= crate::router::MAX_REPLICAS {
                return;
            }
            let r = self.pipes.len();
            self.pipes.push(new_pipe(self.cfg, self.track));
            self.life.push(Life::Up);
            self.in_ring.push(true);
            self.routed.push(0);
            self.failed_over_out.push(0);
            self.failed_over_in.push(0);
            self.kills.push(0);
            self.restarts.push(0);
            self.suspects.push(0);
            self.ring.join(r).expect("index capacity checked above");
            self.health.push_replica(ev.at_ns);
            self.codel.push_replica();
            self.joins += 1;
            self.last_event_ns = self.last_event_ns.max(ev.at_ns);
            return;
        }
        let r = ev.replica;
        if r >= self.pipes.len() {
            return; // plan may name more replicas than the cluster has
        }
        match ev.kind {
            FaultKind::Kill if self.life[r] != Life::Down => {
                if self.life[r] == Life::Draining {
                    self.draining -= 1;
                }
                self.life[r] = Life::Down;
                self.kills[r] += 1;
                self.last_event_ns = self.last_event_ns.max(ev.at_ns);
                for req in self.pipes[r].kill(ev.at_ns) {
                    if self.hedging {
                        if let Some(tr) = self.tracked.get_mut(&(req.id, req.chunk.index)) {
                            if tr.copies.len() > 1 {
                                // The other copy is live: this orphan
                                // silently dies, no failover needed.
                                tr.copies.retain(|&c| c != r);
                                continue;
                            }
                        }
                    }
                    self.reroute(req, ev.at_ns, r);
                }
            }
            FaultKind::Restart if matches!(self.life[r], Life::Down | Life::Departed) => {
                // The pipeline was reset at kill time (or drained dry by
                // a leave); it comes back empty with a cold cache, and
                // rejoins the ring if it had left it.
                self.life[r] = Life::Up;
                self.restarts[r] += 1;
                if !self.in_ring[r] {
                    self.ring.join(r).expect("index was a member before");
                    self.in_ring[r] = true;
                }
            }
            FaultKind::Slow { factor } => {
                self.pipes[r].set_slow_factor(factor);
                self.last_event_ns = self.last_event_ns.max(ev.at_ns);
            }
            FaultKind::Leave if self.life[r] == Life::Up => {
                self.life[r] = Life::Draining;
                self.draining += 1;
                self.leaves += 1;
                self.last_event_ns = self.last_event_ns.max(ev.at_ns);
                if self.in_ring[r] {
                    self.ring.leave(r).expect("was a member");
                    self.in_ring[r] = false;
                }
            }
            _ => {} // kill of a dead replica / restart of a live one: no-op
        }
    }

    /// Advances the cluster through every timer, fault and hedge deadline
    /// up to `target` (faults win ties, then pipeline timers, then hedge
    /// timers). Returns the clock position (`target`, unless `target` is
    /// the drain sentinel `u64::MAX`, in which case the last event time).
    fn process_until(&mut self, target: u64, now: u64) -> u64 {
        let mut now = now;
        loop {
            let pipe_next = self
                .pipes
                .iter()
                .filter_map(|p| p.next_event(now))
                .min()
                .filter(|&t| t <= target);
            let fault_next = self
                .cfg
                .faults
                .events()
                .get(self.next_fault)
                .map(|e| e.at_ns)
                .filter(|&t| t <= target);
            let hedge_next = self
                .hedge_timers
                .front()
                .map(|&(due, _)| due)
                .filter(|&t| t <= target);
            let t = match [fault_next, pipe_next, hedge_next].into_iter().flatten().min() {
                None => break,
                Some(t) => t,
            };
            if fault_next == Some(t) {
                now = now.max(t);
                while let Some(&ev) = self.cfg.faults.events().get(self.next_fault) {
                    if ev.at_ns != t {
                        break;
                    }
                    self.next_fault += 1;
                    self.apply_fault(ev);
                }
                // Failover re-admissions (and survivors) pump at the
                // fault instant, in replica-index order.
                for i in 0..self.pipes.len() {
                    if self.life[i] != Life::Down {
                        self.pipes[i].pump(t);
                        self.drain_events(i, t);
                    }
                }
            } else if pipe_next == Some(t) {
                // Fire this tick on every pipe that owns it, in index
                // order, draining events after each so a completion on a
                // lower-index replica cancels its hedge twin before that
                // twin's own tick runs — the tie-break is deterministic.
                for i in 0..self.pipes.len() {
                    if self.pipes[i].next_event(now) == Some(t) {
                        self.pipes[i].fire(t);
                        self.drain_events(i, t);
                    }
                }
                now = now.max(t);
                self.last_event_ns = self.last_event_ns.max(t);
            } else {
                // Hedge timers due at t. A timer whose request already
                // settled (or started) is a pure no-op and must not
                // advance the clock — the drain would otherwise report
                // wall time with no event behind it.
                let mut acted = false;
                while let Some(&(due, key)) = self.hedge_timers.front() {
                    if due != t {
                        break;
                    }
                    self.hedge_timers.pop_front();
                    acted |= self.fire_hedge(key, t);
                }
                if acted {
                    now = now.max(t);
                }
            }
            self.settle_drained();
            self.refresh_health(now.max(t));
        }
        if target == u64::MAX {
            now
        } else {
            target.max(now)
        }
    }
}

/// Replays `jobs` through an N-replica cluster on the virtual clock and
/// renders the decided batches. See the module docs for the model; see
/// [`ClusterMetrics::conserves_submitted`] for the accounting law the
/// result is guaranteed (and asserted) to satisfy.
pub fn run_cluster(cfg: &ClusterConfig, jobs: &[TimedJob]) -> ClusterReport {
    cfg.server.sched.validate();
    let replicas = cfg.replicas.max(1);
    let hedging = cfg.hedge.enabled();
    let track = hedging || cfg.health.enabled || cfg.admission.enabled;
    let mut state = ClusterState {
        epoch: Instant::now(),
        ring: HashRing::new(replicas, &cfg.router),
        pipes: (0..replicas).map(|_| new_pipe(cfg, track)).collect(),
        life: vec![Life::Up; replicas],
        in_ring: vec![true; replicas],
        routed: vec![0; replicas],
        failed_over_out: vec![0; replicas],
        failed_over_in: vec![0; replicas],
        kills: vec![0; replicas],
        restarts: vec![0; replicas],
        suspects: vec![0; replicas],
        front_door_shed: 0,
        overload_shed: 0,
        hedged: 0,
        hedge_won: 0,
        hedge_wasted: 0,
        joins: 0,
        leaves: 0,
        draining: 0,
        health: HealthDetector::new(cfg.health, replicas, cfg.service.service_ns),
        codel: CoDelAdmission::new(cfg.admission, replicas),
        track,
        hedging,
        tracked: BTreeMap::new(),
        hedge_timers: VecDeque::new(),
        next_fault: 0,
        last_event_ns: 0,
        cfg,
    };

    // The decision loop: single-threaded, in trace order. A job splits
    // into its row-band chunks at the front door; all chunks of one
    // arrival share one routing decision (same coalescing key, same
    // replica — scene affinity would pick the same target anyway), and
    // the front-door counters account in chunk units.
    let mut now = 0u64;
    let mut submitted_chunks = 0usize;
    for (id, tj) in jobs.iter().enumerate() {
        let at = now + tj.delay_before.as_nanos() as u64;
        now = state.process_until(at, now);
        state.last_event_ns = state.last_event_ns.max(at);
        state.refresh_health(at);
        let of = effective_chunks(cfg.server.chunks, &tj.job);
        submitted_chunks += of as usize;
        let key_hash = HashRing::key_hash(&tj.job.key());
        match state.pick(key_hash, at) {
            Some(r) => {
                if state.codel.should_shed(r, tj.priority) {
                    // Overload admission: shed Batch-class work early at
                    // the front door instead of letting every class miss
                    // its deadline behind a standing queue. The whole
                    // arrival drops — all of its chunk units.
                    state.front_door_shed += of as usize;
                    state.overload_shed += of as usize;
                    continue;
                }
                state.routed[r] += 1;
                for index in 0..of {
                    let chunk = ChunkSpan { index, of };
                    if hedging {
                        let rid = id as u64;
                        let req = Request {
                            id: rid,
                            submitted_at: state.epoch + Duration::from_nanos(at),
                            priority: tj.priority,
                            arrival_ns: at,
                            deadline_ns: tj.deadline.map(|d| at + d.as_nanos() as u64),
                            chunk,
                            job: tj.job.clone(),
                        };
                        if state.pipes[r].admit_request(req.clone(), at) {
                            state.pipes[r].mark_hedged(rid, index);
                            state.tracked.insert(
                                (rid, index),
                                Tracked {
                                    req,
                                    copies: vec![r],
                                    started: false,
                                    hedged: false,
                                    clone_replica: None,
                                },
                            );
                            state
                                .hedge_timers
                                .push_back((at.saturating_add(cfg.hedge.delay_ns), (rid, index)));
                        }
                    } else {
                        state.pipes[r].admit(id as u64, at, tj, chunk);
                    }
                }
                state.pipes[r].pump(at);
                state.drain_events(r, at);
            }
            None => state.front_door_shed += of as usize,
        }
    }
    // Drain: remaining timers, faults and hedge deadlines, to quiescence.
    let end = state.process_until(u64::MAX, now);
    let wall_ns = state.last_event_ns.max(end);
    for pipe in &mut state.pipes {
        pipe.finalize(wall_ns);
    }
    debug_assert!(state.tracked.is_empty(), "every tracked request must settle by drain");

    // Decisions locked in — produce payloads. Per replica, fan the
    // decided batches out over `fnr_par`; thread width moves wall time
    // only. Replicas serve *chunks*; whole responses are reassembled
    // across the fleet afterwards (a failover can scatter one request's
    // chunks over several replicas).
    let threads = fnr_par::current_num_threads();
    let workers = cfg.server.workers.max(1);
    let mut all_chunks: Vec<ChunkResponse> = Vec::new();
    let mut replica_stats: Vec<ReplicaStats> = Vec::new();
    for (i, pipe) in state.pipes.iter().enumerate() {
        let nested: Vec<Vec<ChunkResponse>> = match cfg.payload {
            PayloadMode::Render => {
                fnr_par::par_map(&pipe.decided, |batch| execute_batch(batch, &cfg.server.tables))
            }
            PayloadMode::Synthetic => fnr_par::par_map(&pipe.decided, |batch| {
                batch
                    .requests
                    .iter()
                    .map(|req| ChunkResponse {
                        id: req.id,
                        chunk: req.chunk,
                        bytes: synthetic_chunk_payload(&req.job, req.chunk),
                    })
                    .collect()
            }),
        };
        let mut chunks: Vec<ChunkResponse> = nested.into_iter().flatten().collect();
        chunks.sort_unstable_by_key(|c| (c.id, c.chunk.index));
        // The per-replica digest is over the chunk payloads this replica
        // served (identical to the response set at chunk count 1).
        let responses: Vec<Response> =
            chunks.iter().map(|c| Response { id: c.id, bytes: c.bytes.clone() }).collect();
        let lane_acct: Vec<LaneAccounting> = cfg
            .server
            .sched
            .lanes
            .iter()
            .zip(&pipe.rejected)
            .map(|(l, &rej)| LaneAccounting { name: l.name.clone(), weight: l.weight, rejected: rej })
            .collect();
        let metrics = ServeMetrics::aggregate(
            &pipe.request_metrics,
            &pipe.batch_metrics,
            &pipe.shed_metrics,
            &pipe.fail_metrics,
            &[],
            &responses,
            &lane_acct,
            RobustTotals::default(),
            pipe.wall_ns,
            workers,
            threads,
        );
        let (cache_hits, cache_misses) = pipe.cache_stats();
        replica_stats.push(ReplicaStats {
            replica: i,
            alive: state.life[i] != Life::Down,
            kills: state.kills[i],
            restarts: state.restarts[i],
            routed: state.routed[i],
            failed_over_out: state.failed_over_out[i],
            failed_over_in: state.failed_over_in[i],
            cache_hits,
            cache_misses,
            busy_ns: pipe.busy_ns,
            suspects: state.suspects[i],
            slow_factor: pipe.slow_factor(),
            departed: matches!(state.life[i], Life::Draining | Life::Departed),
            metrics,
        });
        all_chunks.extend(chunks);
    }
    // Cross-fleet reassembly: only parents whose every chunk was served
    // somewhere become responses; the digest is over those whole
    // responses, byte-identical to the unchunked digest at any chunk
    // count.
    let all_responses = assemble_chunks(all_chunks);
    let digest = response_set_digest(&all_responses);
    let front_door = FrontDoorTotals {
        front_door_shed: state.front_door_shed,
        overload_shed: state.overload_shed,
        hedged: state.hedged,
        hedge_won: state.hedge_won,
        hedge_wasted: state.hedge_wasted,
        joins: state.joins,
        leaves: state.leaves,
    };
    let metrics = ClusterMetrics::aggregate(
        replica_stats,
        jobs.len(),
        submitted_chunks,
        all_responses.len(),
        front_door,
        wall_ns,
        workers,
        threads,
        digest,
    );
    assert!(
        metrics.conserves_submitted(),
        "chunk conservation violated: served {} + shed {} + rejected {} + failed {} + front door {} != submitted chunks {} ({} jobs)",
        metrics.served,
        metrics.shed,
        metrics.rejected,
        metrics.failed,
        metrics.front_door_shed,
        metrics.submitted_chunks,
        metrics.submitted
    );
    assert!(
        metrics.hedged == metrics.hedge_won + metrics.hedge_wasted,
        "hedge accounting violated: hedged {} != won {} + wasted {}",
        metrics.hedged,
        metrics.hedge_won,
        metrics.hedge_wasted
    );
    ClusterReport { responses: all_responses, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::MAX_REPLICAS;
    use crate::workload::{generate, ArrivalPattern, WorkloadSpec};
    use std::time::Duration;

    fn spec(requests: usize, pattern: ArrivalPattern) -> WorkloadSpec {
        WorkloadSpec {
            requests,
            pattern,
            mean_gap: Duration::from_micros(30),
            deadline: Some(Duration::from_millis(8)),
            ..WorkloadSpec::default()
        }
    }

    fn synth_cfg(replicas: usize) -> ClusterConfig {
        ClusterConfig { replicas, payload: PayloadMode::Synthetic, ..ClusterConfig::default() }
    }

    #[test]
    fn fault_plan_parses_and_sorts() {
        let plan = FaultPlan::parse("restart@900ms:1, kill@500ms:1").expect("valid");
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, FaultKind::Kill);
        assert_eq!(evs[0].at_ns, 500_000_000);
        assert_eq!(evs[1].kind, FaultKind::Restart);
        assert_eq!(evs[1].at_ns, 900_000_000);
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("explode@1s:0").is_err());
        assert!(FaultPlan::parse("kill@xyz:0").is_err());
        assert!(FaultPlan::parse("kill@1s").is_err());
    }

    #[test]
    fn fault_plan_parse_errors_are_descriptive() {
        // Empty / whitespace / dangling-comma specs are "no faults", not
        // errors — the CLI default is an empty string.
        assert!(FaultPlan::parse("   ").expect("whitespace ok").is_empty());
        assert!(FaultPlan::parse("kill@1ms:0,").expect("trailing comma ok").events().len() == 1);
        // Unknown op: the message names the bad kind and the alternatives.
        let e = FaultPlan::parse("explode@1s:0").unwrap_err();
        assert!(
            e.contains("unknown fault kind `explode`")
                && ["`kill`", "`restart`", "`slow`", "`join`", "`leave`"]
                    .iter()
                    .all(|k| e.contains(k)),
            "{e}"
        );
        // Bad duration: the message names the bad time and the grammar.
        let e = FaultPlan::parse("kill@12parsecs:0").unwrap_err();
        assert!(e.contains("bad time `12parsecs`") && e.contains("ns/us/ms/s"), "{e}");
        let e = FaultPlan::parse("kill@:0").unwrap_err();
        assert!(e.contains("bad time ``"), "{e}");
        // Structural errors echo the expected shape with an example.
        let e = FaultPlan::parse("kill").unwrap_err();
        assert!(e.contains("KIND@TIME:REPLICA") && e.contains("kill@500ms:1"), "{e}");
        let e = FaultPlan::parse("kill@1s").unwrap_err();
        assert!(e.contains("kill@TIME:REPLICA"), "{e}");
        // Bad replica index.
        let e = FaultPlan::parse("kill@1s:minus-one").unwrap_err();
        assert!(e.contains("bad replica `minus-one`"), "{e}");
        // One bad element poisons the whole spec (no partial plans).
        assert!(FaultPlan::parse("kill@1ms:0,bogus").is_err());
    }

    #[test]
    fn fault_plan_parses_resilience_verbs() {
        let plan = FaultPlan::parse("slow@2ms:1:8,join@5ms,leave@9ms:0,slow@12ms:1:1")
            .expect("valid resilience plan");
        let kinds: Vec<FaultKind> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Slow { factor: 8 },
                FaultKind::Join,
                FaultKind::Leave,
                FaultKind::Slow { factor: 1 },
            ]
        );
        assert_eq!(plan.joins(), 1);
        // A join carries no replica index — the event slot is a sentinel.
        assert_eq!(plan.events()[1].replica, usize::MAX);
        assert!(plan.validate_for(4).is_ok());
    }

    #[test]
    fn fault_plan_rejects_bad_resilience_specs_descriptively() {
        // A slow factor must be an integer >= 1; the message says why 1
        // is the floor.
        let e = FaultPlan::parse("slow@1ms:0:0").unwrap_err();
        assert!(e.contains("bad slow factor `0`") && e.contains("nominal speed"), "{e}");
        let e = FaultPlan::parse("slow@1ms:0:fast").unwrap_err();
        assert!(e.contains("bad slow factor `fast`"), "{e}");
        // A truncated slow spec echoes the full three-field shape.
        let e = FaultPlan::parse("slow@1ms:0").unwrap_err();
        assert!(e.contains("slow@TIME:REPLICA:FACTOR"), "{e}");
        // A replica can leave at most once.
        let e = FaultPlan::parse("leave@1ms:2,leave@5ms:2").unwrap_err();
        assert!(e.contains("replica 2 already has a `leave` event"), "{e}");
        // A join takes no replica argument — the next index is implied.
        let e = FaultPlan::parse("join@1ms:3").unwrap_err();
        assert!(e.contains("join@TIME") && e.contains("no replica argument"), "{e}");
        // More joins than the ring can ever hold fail at parse time...
        let spec: Vec<String> = (0..=MAX_REPLICAS).map(|i| format!("join@{i}ms")).collect();
        let e = FaultPlan::parse(&spec.join(",")).unwrap_err();
        assert!(e.contains("exceed the ring capacity"), "{e}");
        // ...and a plan that only overflows against a given base fleet
        // fails validation with both terms of the sum named.
        let plan = FaultPlan::parse("join@1ms,join@2ms").expect("two joins parse");
        let e = plan.validate_for(MAX_REPLICAS - 1).unwrap_err();
        assert!(e.contains("127 base replicas") && e.contains("2 `join` events"), "{e}");
        assert!(plan.validate_for(MAX_REPLICAS - 2).is_ok());
    }

    #[test]
    fn time_suffixes_parse() {
        assert_eq!(parse_time_ns("1200ns"), Some(1_200));
        assert_eq!(parse_time_ns("250us"), Some(250_000));
        assert_eq!(parse_time_ns("500ms"), Some(500_000_000));
        assert_eq!(parse_time_ns("3s"), Some(3_000_000_000));
        assert_eq!(parse_time_ns("77"), Some(77));
        assert_eq!(parse_time_ns("soon"), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_kill_restart_paired() {
        let a = FaultPlan::seeded(7, 8, 1_000_000_000, 3);
        let b = FaultPlan::seeded(7, 8, 1_000_000_000, 3);
        assert_eq!(a.events().len(), 6);
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!((x.at_ns, x.replica, x.kind), (y.at_ns, y.replica, y.kind));
        }
        let kills = a.events().iter().filter(|e| e.kind == FaultKind::Kill).count();
        assert_eq!(kills, 3);
    }

    #[test]
    fn cluster_without_faults_serves_everything_or_accounts_for_it() {
        let jobs = generate(&spec(300, ArrivalPattern::Bursty));
        let report = run_cluster(&synth_cfg(4), &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.submitted, 300);
        assert_eq!(m.kills, 0);
        assert_eq!(m.failed_over, 0);
        assert!(m.served > 0);
        assert_eq!(report.responses.len(), m.completed);
        // At the default chunk count of 1, chunk units and whole-request
        // units coincide.
        assert_eq!(m.submitted_chunks, m.submitted);
        assert_eq!(m.served, m.completed);
        // Scene affinity: each coalescing key is served by exactly one
        // replica, so the number of replicas that saw traffic is bounded
        // by the number of distinct keys but at least one.
        assert!(m.replicas.iter().any(|r| r.routed > 0));
    }

    #[test]
    fn kill_fails_over_and_restart_comes_back_cold() {
        let jobs = generate(&spec(600, ArrivalPattern::Bursty));
        // Kill every replica but 0 early, restart later: traffic must
        // fail over to replica 0 and the restarted replicas' caches
        // re-miss.
        let faults = FaultPlan::parse("kill@2ms:1,kill@2ms:2,kill@2ms:3,restart@9ms:1,restart@9ms:2,restart@9ms:3")
            .expect("valid");
        let cfg = ClusterConfig { faults, ..synth_cfg(4) };
        let report = run_cluster(&cfg, &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.kills, 3);
        assert_eq!(m.restarts, 3);
        assert!(m.replicas.iter().all(|r| r.alive), "everyone restarted");
        // Identical replay.
        let again = run_cluster(&cfg, &jobs);
        assert_eq!(m.digest, again.metrics.digest);
        assert_eq!(m.served, again.metrics.served);
        assert_eq!(m.failed_over, again.metrics.failed_over);
    }

    #[test]
    fn single_dead_cluster_sheds_everything_at_the_front_door() {
        let jobs = generate(&spec(50, ArrivalPattern::Uniform));
        let faults = FaultPlan::parse("kill@0ns:0").expect("valid");
        let cfg = ClusterConfig { replicas: 1, faults, ..synth_cfg(1) };
        let report = run_cluster(&cfg, &jobs);
        let m = &report.metrics;
        assert!(m.conserves_submitted());
        assert_eq!(m.served, 0);
        assert_eq!(m.front_door_shed, 50);
        assert!(report.responses.is_empty());
    }

    #[test]
    fn cold_start_cost_is_observable_in_service_times() {
        let jobs = generate(&spec(80, ArrivalPattern::Bursty));
        let cheap = ClusterConfig {
            service: ClusterService { service_ns: 100_000, per_item_ns: 0, cold_start_ns: 0 },
            ..synth_cfg(2)
        };
        let costly = ClusterConfig {
            service: ClusterService {
                service_ns: 100_000,
                per_item_ns: 0,
                cold_start_ns: 50_000_000,
            },
            ..synth_cfg(2)
        };
        let a = run_cluster(&cheap, &jobs);
        let b = run_cluster(&costly, &jobs);
        assert!(
            b.metrics.wall_ns > a.metrics.wall_ns,
            "cold starts must cost virtual time: {} vs {}",
            b.metrics.wall_ns,
            a.metrics.wall_ns
        );
        let misses: u64 = b.metrics.replicas.iter().map(|r| r.cache_misses).sum();
        let hits: u64 = b.metrics.replicas.iter().map(|r| r.cache_hits).sum();
        assert!(misses > 0, "first batch of each render key misses");
        assert!(hits > 0, "affinity keeps later batches warm");
    }
}
