//! Load generators: open-loop (arrival-timed) and closed-loop (response-
//! gated) drivers over a generated workload schedule, plus the
//! deterministic **virtual-clock harness** ([`run_virtual`]) that replays
//! a schedule against the scheduling layer without real time.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultInjector;
use crate::metrics::{LaneAccounting, RobustTotals, ServeMetrics};
use crate::request::{assemble_chunks, effective_chunks, ChunkResponse, ChunkSpan, Response};
use crate::server::{execute_batch, run, ServeReport, ServerConfig, WaitOutcome};
use crate::vclock::VirtualPipeline;
use crate::workload::TimedJob;

/// How long a closed-loop client "thinks" between receiving a response and
/// submitting its next request. `None` reproduces the pure soak shape
/// (arrival rate tracks service rate exactly); the distributions model
/// interactive clients, whose pauses let the batcher see sparser arrivals.
///
/// Think times are drawn from a per-client seeded stream, so a run's sleep
/// schedule is a pure function of `(seed, clients)` — timing moves
/// metrics, never response bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThinkTime {
    /// No pause: submit the next request as soon as the response lands.
    None,
    /// A fixed pause after every response.
    Constant(Duration),
    /// Exponentially-distributed pauses with the given mean (capped at
    /// 50× the mean so one unlucky draw cannot stall a client forever).
    Exponential {
        /// Mean of the distribution.
        mean: Duration,
    },
}

impl ThinkTime {
    /// Draws the next pause from this model.
    fn sample(&self, rng: &mut StdRng) -> Duration {
        match *self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Constant(d) => d,
            ThinkTime::Exponential { mean } => {
                // Inverse-CDF sampling; u ∈ (0, 1) keeps ln finite.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let pause = -(1.0 - u).ln() * mean.as_nanos() as f64;
                let cap = mean.as_nanos() as f64 * 50.0;
                Duration::from_nanos(pause.min(cap) as u64)
            }
        }
    }
}

/// Open-loop driver: submits each job after its scheduled inter-arrival
/// delay, never waiting for responses — arrival rate is independent of
/// service rate, so queueing and coalescing behave like production
/// traffic. Jobs carry their schedule's traffic class and deadline.
/// Single submitter ⇒ request ids equal schedule order.
pub fn run_open_loop(cfg: &ServerConfig, jobs: &[TimedJob]) -> ServeReport {
    let (_submitted, report) = run(cfg, |client| {
        let mut ok = 0usize;
        for tj in jobs {
            if !tj.delay_before.is_zero() {
                std::thread::sleep(tj.delay_before);
            }
            if client.submit_with(tj.job.clone(), tj.priority, tj.deadline).is_ok() {
                ok += 1;
            }
        }
        ok
    });
    report
}

/// Closed-loop driver: `clients` threads share the schedule round-robin;
/// each submits its next job only after the previous one's outcome
/// arrives (arrival rate tracks service rate — the soak-test shape).
/// A shed outcome releases the client just like a response does; only
/// shutdown stops it. Scheduled delays are ignored; the outcome wait is
/// the pacing.
pub fn run_closed_loop(cfg: &ServerConfig, jobs: &[TimedJob], clients: usize) -> ServeReport {
    run_closed_loop_thinking(cfg, jobs, clients, ThinkTime::None, 0)
}

/// Closed-loop driver with a think-time model: like [`run_closed_loop`],
/// but every client pauses per `think` between its outcome and its next
/// submission, from a deterministic per-client stream derived from `seed`.
pub fn run_closed_loop_thinking(
    cfg: &ServerConfig,
    jobs: &[TimedJob],
    clients: usize,
    think: ThinkTime,
    seed: u64,
) -> ServeReport {
    let clients = clients.max(1);
    let (_done, report) = run(cfg, |client| {
        std::thread::scope(|s| {
            for ci in 0..clients {
                let client = &*client;
                s.spawn(move || {
                    // SplitMix-style per-client stream: nearby client
                    // indices get uncorrelated schedules.
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ci as u64 + 1),
                    );
                    let mut stride = jobs.iter().skip(ci).step_by(clients).peekable();
                    while let Some(tj) = stride.next() {
                        match client.submit_with(tj.job.clone(), tj.priority, tj.deadline) {
                            Ok(id) => {
                                if client.wait_outcome(id) == WaitOutcome::Closed {
                                    break; // server shut down under us
                                }
                            }
                            Err(_) => break,
                        }
                        // Think only *between* requests: a pause after the
                        // final response would pad wall time (and every
                        // throughput figure derived from it) with dead tail
                        // sleep.
                        if stride.peek().is_some() {
                            let pause = think.sample(&mut rng);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                        }
                    }
                });
            }
        });
    });
    report
}

/// Virtual service model for [`run_virtual`].
#[derive(Debug, Clone, Copy)]
pub struct VirtualService {
    /// Virtual wall time one batch occupies one of the
    /// `ServerConfig::workers` virtual workers.
    pub service_ns: u64,
    /// Size-aware cost: extra virtual time per batch member, so a fat
    /// batch costs more than a singleton. Zero (the default) reproduces
    /// the flat per-batch model exactly.
    pub per_item_ns: u64,
}

impl Default for VirtualService {
    fn default() -> Self {
        VirtualService { service_ns: 500_000, per_item_ns: 0 }
    }
}

/// Replays `jobs` through the scheduling layer under a **virtual clock**:
/// arrivals advance time by their scheduled gaps, batches occupy virtual
/// workers for `service.service_ns`, and every scheduling decision —
/// lane order, per-key fairness, linger flushes, deadline shedding,
/// admission rejects — is made single-threaded in trace order against
/// that clock. The decided batches are then rendered for real (fanning
/// out over `fnr_par`), so payload bytes are the production ones.
///
/// This is the deterministic scheduling harness: for a fixed schedule the
/// response-set digest, the per-lane served/shed/expired/rejected
/// counters, the queue-latency histograms and the virtual wall clock are
/// all byte-identical at any `FNR_THREADS` or machine — real parallelism
/// only accelerates the rendering of already-decided batches. The serve
/// equivalence suite and CI's mixed-priority leg diff exactly that.
///
/// The virtual pipeline mirrors the threaded one: per-lane bounded
/// admission (a full lane *rejects* — an open-loop virtual submitter
/// cannot park), a batch queue of `2 × workers` slots that blocks the
/// scheduler when full (which is where queueing — and therefore deadline
/// shedding — comes from under saturation), and the same
/// size/linger/drain batcher.
pub fn run_virtual(cfg: &ServerConfig, jobs: &[TimedJob], service: VirtualService) -> ServeReport {
    run_virtual_with_faults(cfg, jobs, service, None)
}

/// [`run_virtual`] plus a seeded chaos injector: poisoned requests fail
/// at the instant a virtual worker would take their batch (the virtual
/// analogue of the live supervisor's quarantine verdict), delayed batches
/// stretch their virtual service time. The injector takes the same seeds
/// as the live server's, so the poisoned-request *set* is identical in
/// both modes — CI's chaos legs diff exactly that.
pub fn run_virtual_with_faults(
    cfg: &ServerConfig,
    jobs: &[TimedJob],
    service: VirtualService,
    injector: Option<FaultInjector>,
) -> ServeReport {
    cfg.sched.validate();
    let mut pipe = VirtualPipeline::with_injector(cfg, service.service_ns, 0, false, injector);
    pipe.set_per_item_ns(service.per_item_ns);
    let mut now = 0u64;
    for (id, tj) in jobs.iter().enumerate() {
        let at = now + tj.delay_before.as_nanos() as u64;
        pipe.advance_to(&mut now, at);
        let of = effective_chunks(cfg.chunks, &tj.job);
        for index in 0..of {
            pipe.admit(id as u64, at, tj, ChunkSpan { index, of });
        }
        pipe.pump(at);
    }
    pipe.drain(&mut now);

    // Decisions are locked in; now render them for real. The fan-out is
    // pure per-batch work, so `FNR_THREADS` moves wall time only. Chunks
    // of the same parent may have ridden different batches; reassembly
    // stitches them back in row order, dropping parents that lost any
    // chunk to a shed or an injected failure.
    let nested: Vec<Vec<ChunkResponse>> =
        fnr_par::par_map(&pipe.decided, |batch| execute_batch(batch, &cfg.tables));
    let responses: Vec<Response> = assemble_chunks(nested.into_iter().flatten().collect());

    let lane_acct: Vec<LaneAccounting> = cfg
        .sched
        .lanes
        .iter()
        .zip(&pipe.rejected)
        .map(|(l, &r)| LaneAccounting { name: l.name.clone(), weight: l.weight, rejected: r })
        .collect();
    let metrics = ServeMetrics::aggregate(
        &pipe.request_metrics,
        &pipe.batch_metrics,
        &pipe.shed_metrics,
        &pipe.fail_metrics,
        &[],
        &responses,
        &lane_acct,
        RobustTotals::default(),
        pipe.wall_ns,
        cfg.workers.max(1),
        fnr_par::current_num_threads(),
    );
    ServeReport { responses, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Priority, SchedConfig};
    use crate::workload::{generate, ArrivalPattern, WorkloadSpec};
    use std::time::Duration;

    fn tiny_spec(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            requests: n,
            pattern: ArrivalPattern::Bursty,
            mean_gap: Duration::from_micros(20),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn open_and_closed_loop_answer_every_request_with_equal_digests() {
        let jobs = generate(&tiny_spec(24));
        let cfg = ServerConfig::default();
        let open = run_open_loop(&cfg, &jobs);
        let closed = run_closed_loop(&cfg, &jobs, 4);
        assert_eq!(open.responses.len(), 24);
        assert_eq!(closed.responses.len(), 24);
        // Same job multiset ⇒ same order-canonical digest, even though id
        // assignment differs between the drivers.
        assert_eq!(open.metrics.digest, closed.metrics.digest);
    }

    #[test]
    fn think_time_only_moves_timing_never_payloads() {
        let jobs = generate(&tiny_spec(16));
        let cfg = ServerConfig::default();
        let baseline = run_closed_loop(&cfg, &jobs, 2);
        for think in [
            ThinkTime::Constant(Duration::from_micros(200)),
            ThinkTime::Exponential { mean: Duration::from_micros(150) },
        ] {
            let paused = run_closed_loop_thinking(&cfg, &jobs, 2, think, 42);
            assert_eq!(paused.responses.len(), 16, "{think:?} answered everything");
            assert_eq!(
                paused.metrics.digest, baseline.metrics.digest,
                "{think:?} must not move response bytes"
            );
        }
    }

    #[test]
    fn exponential_think_samples_are_seeded_and_bounded() {
        let mean = Duration::from_micros(100);
        let think = ThinkTime::Exponential { mean };
        let draw = |seed: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| think.sample(&mut rng)).collect()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|d| !d.is_zero()), "exponential draws are non-trivial");
        let cap = mean * 50;
        assert!(a.iter().all(|&d| d <= cap), "pauses are capped at 50x the mean");
        assert_ne!(a, draw(8), "different seed moves the schedule");
    }

    #[test]
    fn virtual_harness_is_deterministic_and_answers_everything_without_deadlines() {
        let jobs = generate(&tiny_spec(40));
        let cfg = ServerConfig::default();
        let a = run_virtual(&cfg, &jobs, VirtualService::default());
        let b = run_virtual(&cfg, &jobs, VirtualService::default());
        assert_eq!(a.responses.len(), 40, "no deadline, no shed: everything answers");
        assert_eq!(a.metrics.digest, b.metrics.digest);
        assert_eq!(a.metrics.wall_ns, b.metrics.wall_ns, "virtual wall clock is exact");
        for (x, y) in a.metrics.lanes.iter().zip(&b.metrics.lanes) {
            assert_eq!(x.served, y.served);
            assert_eq!(x.shed, y.shed);
            assert_eq!(x.queue_hist, y.queue_hist);
        }
        // The open-loop threaded server over the same schedule produces
        // the same response set: the harness decides scheduling, not
        // payloads.
        let threaded = run_open_loop(&cfg, &jobs);
        assert_eq!(a.metrics.digest, threaded.metrics.digest);
    }

    #[test]
    fn virtual_saturation_sheds_deadlined_requests_deterministically() {
        // 1 worker, slow virtual service, tight deadlines, dense arrivals:
        // the backlog must shed — and identically on every replay.
        let jobs = generate(&WorkloadSpec {
            requests: 60,
            mean_gap: Duration::from_micros(50),
            deadline: Some(Duration::from_millis(2)),
            ..tiny_spec(60)
        });
        let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
        let service = VirtualService { service_ns: 3_000_000, per_item_ns: 0 };
        let a = run_virtual(&cfg, &jobs, service);
        let b = run_virtual(&cfg, &jobs, service);
        assert!(a.metrics.shed > 0, "saturation must shed: {:?}", a.metrics.shed);
        assert!(a.metrics.requests > 0, "early arrivals are served");
        assert_eq!(a.metrics.requests + a.metrics.shed + a.metrics.rejected, 60);
        assert_eq!(a.metrics.digest, b.metrics.digest);
        let counts = |r: &ServeReport| -> Vec<(usize, usize, usize, usize)> {
            r.metrics.lanes.iter().map(|l| (l.served, l.shed, l.expired, l.rejected)).collect()
        };
        assert_eq!(counts(&a), counts(&b), "per-lane counters are exact");
    }

    #[test]
    fn virtual_priority_lanes_favour_interactive_queue_latency() {
        // A symmetric simultaneous backlog — one scene per class so each
        // class forms its own batches — on one slow worker: the 4/2/1
        // weights must drain interactive earlier than batch, visible as a
        // lower queue-latency distribution.
        use crate::request::{RenderJob, RenderPrecision, SceneKind, Workload};
        let class_job = |p: Priority, seed: u64| TimedJob {
            delay_before: Duration::ZERO,
            priority: p,
            deadline: None,
            job: Workload::Render(RenderJob {
                scene: match p {
                    Priority::Interactive => SceneKind::Mic,
                    Priority::Standard => SceneKind::Lego,
                    Priority::Batch => SceneKind::Palace,
                },
                precision: RenderPrecision::Fp32,
                width: 4,
                height: 4,
                spp: 2,
                camera_seed: seed,
            }),
        };
        let jobs: Vec<TimedJob> = (0..24)
            .flat_map(|i| Priority::ALL.map(|p| class_job(p, i)))
            .collect();
        let cfg = ServerConfig { workers: 1, queue_capacity: 256, ..ServerConfig::default() };
        let report = run_virtual(&cfg, &jobs, VirtualService { service_ns: 2_000_000, per_item_ns: 0 });
        assert_eq!(report.responses.len(), 72);
        // Deterministic order statistic over the fixed log-4 buckets:
        // higher score = more mass in slower buckets.
        let score = |lane: usize| {
            let hist = &report.metrics.lanes[lane].queue_hist;
            hist.counts().iter().enumerate().map(|(i, &c)| i as u64 * c).sum::<u64>() as f64
                / hist.total().max(1) as f64
        };
        assert!(
            score(0) < score(1) && score(1) <= score(2),
            "weighted drain must order queue waits interactive < standard <= batch: \
             {:.3} / {:.3} / {:.3}",
            score(0),
            score(1),
            score(2)
        );
    }

    #[test]
    fn virtual_single_lane_equals_priority_lane_digest() {
        // Scheduling may only reorder (no deadlines) — so lane policy must
        // never move the digest, single-lane degenerate config included.
        let jobs = generate(&tiny_spec(32));
        let multi = run_virtual(&ServerConfig::default(), &jobs, VirtualService::default());
        let single = run_virtual(
            &ServerConfig { sched: SchedConfig::single_lane(), ..ServerConfig::default() },
            &jobs,
            VirtualService::default(),
        );
        assert_eq!(multi.metrics.digest, single.metrics.digest);
        assert_eq!(single.metrics.lanes.len(), 1);
        assert_eq!(single.metrics.lanes[0].served, 32);
    }

    #[test]
    fn virtual_full_lane_rejects_open_loop_arrivals() {
        // Bursty arrivals into a 2-slot lane with a stalled pipeline must
        // reject the overflow (the virtual submitter cannot park).
        let mut jobs = generate(&tiny_spec(30));
        for tj in &mut jobs {
            tj.delay_before = Duration::ZERO; // one instantaneous burst
            tj.priority = Priority::Standard;
        }
        // max_batch 1 stalls the scheduler after 1 in-service + 2 queued +
        // 1 stalled singleton batches, so the 2-slot lane then overflows.
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 1,
            ..ServerConfig::default()
        };
        let report = run_virtual(&cfg, &jobs, VirtualService { service_ns: 10_000_000, per_item_ns: 0 });
        assert!(report.metrics.rejected > 0, "overflow must reject");
        assert_eq!(
            report.metrics.requests + report.metrics.rejected + report.metrics.shed,
            30,
            "every arrival is accounted for"
        );
    }
}
