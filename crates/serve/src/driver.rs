//! Load generators: open-loop (arrival-timed) and closed-loop (response-
//! gated) drivers over a generated workload schedule.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::server::{run, ServeReport, ServerConfig};
use crate::workload::TimedJob;

/// How long a closed-loop client "thinks" between receiving a response and
/// submitting its next request. `None` reproduces the pure soak shape
/// (arrival rate tracks service rate exactly); the distributions model
/// interactive clients, whose pauses let the batcher see sparser arrivals.
///
/// Think times are drawn from a per-client seeded stream, so a run's sleep
/// schedule is a pure function of `(seed, clients)` — timing moves
/// metrics, never response bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThinkTime {
    /// No pause: submit the next request as soon as the response lands.
    None,
    /// A fixed pause after every response.
    Constant(Duration),
    /// Exponentially-distributed pauses with the given mean (capped at
    /// 50× the mean so one unlucky draw cannot stall a client forever).
    Exponential {
        /// Mean of the distribution.
        mean: Duration,
    },
}

impl ThinkTime {
    /// Draws the next pause from this model.
    fn sample(&self, rng: &mut StdRng) -> Duration {
        match *self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Constant(d) => d,
            ThinkTime::Exponential { mean } => {
                // Inverse-CDF sampling; u ∈ (0, 1) keeps ln finite.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let pause = -(1.0 - u).ln() * mean.as_nanos() as f64;
                let cap = mean.as_nanos() as f64 * 50.0;
                Duration::from_nanos(pause.min(cap) as u64)
            }
        }
    }
}

/// Open-loop driver: submits each job after its scheduled inter-arrival
/// delay, never waiting for responses — arrival rate is independent of
/// service rate, so queueing and coalescing behave like production
/// traffic. Single submitter ⇒ request ids equal schedule order.
pub fn run_open_loop(cfg: &ServerConfig, jobs: &[TimedJob]) -> ServeReport {
    let (_submitted, report) = run(cfg, |client| {
        let mut ok = 0usize;
        for tj in jobs {
            if !tj.delay_before.is_zero() {
                std::thread::sleep(tj.delay_before);
            }
            if client.submit(tj.job.clone()).is_ok() {
                ok += 1;
            }
        }
        ok
    });
    report
}

/// Closed-loop driver: `clients` threads share the schedule round-robin;
/// each submits its next job only after the previous one's response
/// arrives (arrival rate tracks service rate — the soak-test shape).
/// Scheduled delays are ignored; the response wait is the pacing.
pub fn run_closed_loop(cfg: &ServerConfig, jobs: &[TimedJob], clients: usize) -> ServeReport {
    run_closed_loop_thinking(cfg, jobs, clients, ThinkTime::None, 0)
}

/// Closed-loop driver with a think-time model: like [`run_closed_loop`],
/// but every client pauses per `think` between its response and its next
/// submission, from a deterministic per-client stream derived from `seed`.
pub fn run_closed_loop_thinking(
    cfg: &ServerConfig,
    jobs: &[TimedJob],
    clients: usize,
    think: ThinkTime,
    seed: u64,
) -> ServeReport {
    let clients = clients.max(1);
    let (_done, report) = run(cfg, |client| {
        std::thread::scope(|s| {
            for ci in 0..clients {
                let client = &*client;
                s.spawn(move || {
                    // SplitMix-style per-client stream: nearby client
                    // indices get uncorrelated schedules.
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ci as u64 + 1),
                    );
                    let mut stride = jobs.iter().skip(ci).step_by(clients).peekable();
                    while let Some(tj) = stride.next() {
                        match client.submit(tj.job.clone()) {
                            Ok(id) => {
                                if client.wait(id).is_none() {
                                    break; // server shut down under us
                                }
                            }
                            Err(_) => break,
                        }
                        // Think only *between* requests: a pause after the
                        // final response would pad wall time (and every
                        // throughput figure derived from it) with dead tail
                        // sleep.
                        if stride.peek().is_some() {
                            let pause = think.sample(&mut rng);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                        }
                    }
                });
            }
        });
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, ArrivalPattern, WorkloadSpec};
    use std::time::Duration;

    fn tiny_spec(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            requests: n,
            pattern: ArrivalPattern::Bursty,
            mean_gap: Duration::from_micros(20),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn open_and_closed_loop_answer_every_request_with_equal_digests() {
        let jobs = generate(&tiny_spec(24));
        let cfg = ServerConfig::default();
        let open = run_open_loop(&cfg, &jobs);
        let closed = run_closed_loop(&cfg, &jobs, 4);
        assert_eq!(open.responses.len(), 24);
        assert_eq!(closed.responses.len(), 24);
        // Same job multiset ⇒ same order-canonical digest, even though id
        // assignment differs between the drivers.
        assert_eq!(open.metrics.digest, closed.metrics.digest);
    }

    #[test]
    fn think_time_only_moves_timing_never_payloads() {
        let jobs = generate(&tiny_spec(16));
        let cfg = ServerConfig::default();
        let baseline = run_closed_loop(&cfg, &jobs, 2);
        for think in [
            ThinkTime::Constant(Duration::from_micros(200)),
            ThinkTime::Exponential { mean: Duration::from_micros(150) },
        ] {
            let paused = run_closed_loop_thinking(&cfg, &jobs, 2, think, 42);
            assert_eq!(paused.responses.len(), 16, "{think:?} answered everything");
            assert_eq!(
                paused.metrics.digest, baseline.metrics.digest,
                "{think:?} must not move response bytes"
            );
        }
    }

    #[test]
    fn exponential_think_samples_are_seeded_and_bounded() {
        let mean = Duration::from_micros(100);
        let think = ThinkTime::Exponential { mean };
        let draw = |seed: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| think.sample(&mut rng)).collect()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|d| !d.is_zero()), "exponential draws are non-trivial");
        let cap = mean * 50;
        assert!(a.iter().all(|&d| d <= cap), "pauses are capped at 50x the mean");
        assert_ne!(a, draw(8), "different seed moves the schedule");
    }
}
