//! Load generators: open-loop (arrival-timed) and closed-loop (response-
//! gated) drivers over a generated workload schedule.

use crate::server::{run, ServeReport, ServerConfig};
use crate::workload::TimedJob;

/// Open-loop driver: submits each job after its scheduled inter-arrival
/// delay, never waiting for responses — arrival rate is independent of
/// service rate, so queueing and coalescing behave like production
/// traffic. Single submitter ⇒ request ids equal schedule order.
pub fn run_open_loop(cfg: &ServerConfig, jobs: &[TimedJob]) -> ServeReport {
    let (_submitted, report) = run(cfg, |client| {
        let mut ok = 0usize;
        for tj in jobs {
            if !tj.delay_before.is_zero() {
                std::thread::sleep(tj.delay_before);
            }
            if client.submit(tj.job.clone()).is_ok() {
                ok += 1;
            }
        }
        ok
    });
    report
}

/// Closed-loop driver: `clients` threads share the schedule round-robin;
/// each submits its next job only after the previous one's response
/// arrives (arrival rate tracks service rate — the soak-test shape).
/// Scheduled delays are ignored; the response wait is the pacing.
pub fn run_closed_loop(cfg: &ServerConfig, jobs: &[TimedJob], clients: usize) -> ServeReport {
    let clients = clients.max(1);
    let (_done, report) = run(cfg, |client| {
        std::thread::scope(|s| {
            for ci in 0..clients {
                let client = &*client;
                s.spawn(move || {
                    for tj in jobs.iter().skip(ci).step_by(clients) {
                        match client.submit(tj.job.clone()) {
                            Ok(id) => {
                                if client.wait(id).is_none() {
                                    break; // server shut down under us
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
        });
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, ArrivalPattern, WorkloadSpec};
    use std::time::Duration;

    fn tiny_spec(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            requests: n,
            pattern: ArrivalPattern::Bursty,
            mean_gap: Duration::from_micros(20),
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn open_and_closed_loop_answer_every_request_with_equal_digests() {
        let jobs = generate(&tiny_spec(24));
        let cfg = ServerConfig::default();
        let open = run_open_loop(&cfg, &jobs);
        let closed = run_closed_loop(&cfg, &jobs, 4);
        assert_eq!(open.responses.len(), 24);
        assert_eq!(closed.responses.len(), 24);
        // Same job multiset ⇒ same order-canonical digest, even though id
        // assignment differs between the drivers.
        assert_eq!(open.metrics.digest, closed.metrics.digest);
    }
}
