//! Seeded workload generation: the request mixes and arrival patterns the
//! load generators drive the server with.
//!
//! Everything is a pure function of the spec (seed included), so two legs
//! of a CI run — or an open-loop and a closed-loop driver — operate on
//! the *same* job multiset and must produce the same response-set digest.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fnr_tensor::Precision;

use crate::request::{RenderJob, RenderPrecision, SceneKind, Workload};
use crate::sched::Priority;

/// Arrival-time shape of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Constant inter-arrival gap, one request at a time.
    Uniform,
    /// Same-key bursts separated by idle gaps — the coalescable shape
    /// (many users requesting the same scene/model around an event).
    Bursty,
    /// Pareto-like gaps: long quiet stretches punctured by dense arrivals.
    HeavyTailed,
    /// Two sinusoidal day/night cycles over the schedule: the arrival
    /// rate swings 8× between trough and peak, with small same-key bursts
    /// at the peaks — the shape a planet-scale diurnal load curve
    /// compresses to.
    Diurnal,
    /// A bursty baseline with a flash crowd in the middle 10% of the
    /// schedule: dense zero-delay bursts at 8× the baseline rate, all
    /// requesting one seeded hot scene at FP32 — the everyone-watches-
    /// the-same-event shape that hammers a single consistent-hash owner.
    FlashCrowd,
}

impl ArrivalPattern {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(ArrivalPattern::Uniform),
            "bursty" => Some(ArrivalPattern::Bursty),
            "heavy" | "heavy-tailed" => Some(ArrivalPattern::HeavyTailed),
            "diurnal" => Some(ArrivalPattern::Diurnal),
            "flash" | "flash-crowd" => Some(ArrivalPattern::FlashCrowd),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalPattern::Uniform => "uniform",
            ArrivalPattern::Bursty => "bursty",
            ArrivalPattern::HeavyTailed => "heavy-tailed",
            ArrivalPattern::Diurnal => "diurnal",
            ArrivalPattern::FlashCrowd => "flash-crowd",
        }
    }
}

/// What to generate.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total requests.
    pub requests: usize,
    /// RNG seed; same seed ⇒ same job sequence, byte for byte.
    pub seed: u64,
    /// Arrival shape.
    pub pattern: ArrivalPattern,
    /// Table-generator names eligible for table requests (empty disables
    /// table traffic).
    pub table_names: Vec<String>,
    /// Fraction of bursts (or single arrivals) that request a table
    /// instead of a render.
    pub table_fraction: f64,
    /// Pacing scale: mean inter-arrival gap an open-loop driver sleeps.
    pub mean_gap: Duration,
    /// Relative weights of the [`Priority`] classes (interactive,
    /// standard, batch) a burst's traffic class is drawn from. Priorities
    /// come from a *separate* seeded stream, so changing the mix never
    /// moves the job sequence itself (the response-set digest is a pure
    /// function of the jobs).
    pub priority_mix: [f64; 3],
    /// Relative deadline stamped on every generated job (`None` disables
    /// shedding — the pre-scheduler behaviour).
    pub deadline: Option<Duration>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            requests: 1000,
            seed: 42,
            pattern: ArrivalPattern::Bursty,
            table_names: Vec::new(),
            table_fraction: 0.15,
            mean_gap: Duration::from_micros(150),
            priority_mix: [0.25, 0.5, 0.25],
            deadline: None,
        }
    }
}

/// One scheduled job: how long an open-loop driver waits before
/// submitting it (closed-loop drivers ignore the delay), its traffic
/// class, and its relative deadline.
#[derive(Debug, Clone)]
pub struct TimedJob {
    /// Idle time before this submission.
    pub delay_before: Duration,
    /// Traffic class (burst members share their burst's class).
    pub priority: Priority,
    /// Relative deadline from admission; `None` never sheds.
    pub deadline: Option<Duration>,
    /// The work.
    pub job: Workload,
}

fn random_scene(rng: &mut StdRng) -> SceneKind {
    SceneKind::ALL[rng.gen_range(0usize..SceneKind::ALL.len())]
}

fn random_precision(rng: &mut StdRng) -> RenderPrecision {
    // FP32-heavy mix with a long integer tail, echoing the paper's
    // precision study: most traffic at reference quality, the rest
    // exercising the quantized datapath.
    match rng.gen_range(0u32..10) {
        0..=3 => RenderPrecision::Fp32,
        4..=6 => RenderPrecision::Quantized(Precision::Int8),
        7..=8 => RenderPrecision::Quantized(Precision::Int16),
        _ => RenderPrecision::Quantized(Precision::Int4),
    }
}

fn random_render(rng: &mut StdRng, scene: SceneKind, precision: RenderPrecision) -> Workload {
    const SIZES: [usize; 4] = [6, 8, 10, 12];
    const SPP: [usize; 3] = [4, 6, 8];
    Workload::Render(RenderJob {
        scene,
        precision,
        width: SIZES[rng.gen_range(0usize..SIZES.len())],
        height: SIZES[rng.gen_range(0usize..SIZES.len())],
        spp: SPP[rng.gen_range(0usize..SPP.len())],
        camera_seed: rng.gen_range(0u64..u64::MAX),
    })
}

/// Generates the job schedule for `spec`.
///
/// Jobs and arrival times come from the stream seeded by `spec.seed`
/// exactly as they always have; traffic classes come from a *separate*
/// stream (`assign_priorities`), so a priority-mix change can never move
/// the job multiset — and therefore never the response-set digest.
pub fn generate(spec: &WorkloadSpec) -> Vec<TimedJob> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let gap_ns = spec.mean_gap.as_nanos() as u64;
    let mut out = Vec::with_capacity(spec.requests);
    let timed = |delay_before: Duration, job: Workload| TimedJob {
        delay_before,
        // Placeholder class; `assign_priorities` rewrites it below.
        priority: Priority::Standard,
        deadline: spec.deadline,
        job,
    };
    while out.len() < spec.requests {
        match spec.pattern {
            ArrivalPattern::Uniform => {
                let job = pick_job(&mut rng, spec, 1).remove(0);
                out.push(timed(Duration::from_nanos(gap_ns), job));
            }
            ArrivalPattern::Bursty => {
                let burst = rng.gen_range(2usize..=12).min(spec.requests - out.len());
                // The burst's members share one coalescing key and arrive
                // back to back; the idle gap before it preserves the mean
                // arrival rate.
                let jobs = pick_job(&mut rng, spec, burst);
                let idle = Duration::from_nanos(gap_ns * burst as u64);
                for (i, job) in jobs.into_iter().enumerate() {
                    let delay = if i == 0 { idle } else { Duration::ZERO };
                    out.push(timed(delay, job));
                }
            }
            ArrivalPattern::HeavyTailed => {
                // Pareto(α = 1.5) gap, capped at 50× the mean: mostly short
                // gaps, occasionally a very long one.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let pareto = 1.0 / u.powf(1.0 / 1.5);
                let scaled = ((gap_ns as f64) * pareto.min(50.0) / 3.0) as u64;
                let job = pick_job(&mut rng, spec, 1).remove(0);
                out.push(timed(Duration::from_nanos(scaled), job));
            }
            ArrivalPattern::Diurnal => {
                // Phase by schedule position: two full cycles, gap scaled
                // from 2× the mean (trough) down to 0.25× (peak) — an 8×
                // rate swing — with small same-key bursts near the peaks.
                let p = out.len() as f64 / spec.requests.max(1) as f64;
                let s = 0.5 * (1.0 + (std::f64::consts::TAU * 2.0 * p).sin());
                let scale = 2.0 - 1.75 * s;
                let burst = if s > 0.75 { rng.gen_range(2usize..=6) } else { 1 }
                    .min(spec.requests - out.len());
                let jobs = pick_job(&mut rng, spec, burst);
                let idle = Duration::from_nanos((gap_ns as f64 * scale) as u64 * burst as u64);
                for (i, job) in jobs.into_iter().enumerate() {
                    let delay = if i == 0 { idle } else { Duration::ZERO };
                    out.push(timed(delay, job));
                }
            }
            ArrivalPattern::FlashCrowd => {
                let lo = spec.requests * 45 / 100;
                let hi = spec.requests * 55 / 100;
                if (lo..hi).contains(&out.len()) {
                    // The crowd: dense bursts at 8× the baseline rate, all
                    // on one seeded hot scene at FP32 — a single
                    // coalescing key, so one ring owner takes the spike.
                    let burst = rng.gen_range(4usize..=16).min(spec.requests - out.len());
                    let scene = SceneKind::ALL[(spec.seed % 3) as usize];
                    let jobs: Vec<Workload> = (0..burst)
                        .map(|_| random_render(&mut rng, scene, RenderPrecision::Fp32))
                        .collect();
                    let idle = Duration::from_nanos(gap_ns * burst as u64 / 8);
                    for (i, job) in jobs.into_iter().enumerate() {
                        let delay = if i == 0 { idle } else { Duration::ZERO };
                        out.push(timed(delay, job));
                    }
                } else {
                    // Outside the window: the bursty baseline.
                    let burst = rng.gen_range(2usize..=12).min(spec.requests - out.len());
                    let jobs = pick_job(&mut rng, spec, burst);
                    let idle = Duration::from_nanos(gap_ns * burst as u64);
                    for (i, job) in jobs.into_iter().enumerate() {
                        let delay = if i == 0 { idle } else { Duration::ZERO };
                        out.push(timed(delay, job));
                    }
                }
            }
        }
    }
    out.truncate(spec.requests);
    assign_priorities(&mut out, spec);
    out
}

/// Total chunk units a schedule admits at the requested chunk count `k`:
/// the sum of [`effective_chunks`](crate::request::effective_chunks) over
/// every job. This is the right-hand side of the chunk-granular
/// conservation law (`served + shed + rejected + failed + front-door ==
/// total_chunks`), so drivers and benches can assert it without
/// re-deriving the per-job split.
pub fn total_chunks(jobs: &[TimedJob], k: usize) -> usize {
    jobs.iter()
        .map(|tj| crate::request::effective_chunks(k, &tj.job) as usize)
        .sum()
}

/// Seed salt separating the priority stream from the job stream.
const PRIORITY_STREAM_SALT: u64 = 0x70_72_69_6f_72_69_74_79; // "priority"

/// Stamps seeded traffic classes onto a generated schedule: one draw from
/// `spec.priority_mix` per burst (a zero-delay job continues its
/// predecessor's burst and inherits its class — the whole burst is one
/// user-visible event, so it travels in one lane).
fn assign_priorities(jobs: &mut [TimedJob], spec: &WorkloadSpec) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ PRIORITY_STREAM_SALT);
    let total: f64 = spec.priority_mix.iter().sum();
    let mut current = Priority::Standard;
    for (i, tj) in jobs.iter_mut().enumerate() {
        if i == 0 || !tj.delay_before.is_zero() {
            current = if total <= 0.0 {
                Priority::Standard
            } else {
                let mut u = rng.gen_range(0.0f64..1.0) * total;
                let mut drawn = *Priority::ALL.last().expect("non-empty");
                for (p, &w) in Priority::ALL.iter().zip(&spec.priority_mix) {
                    if u < w {
                        drawn = *p;
                        break;
                    }
                    u -= w;
                }
                drawn
            };
        }
        tj.priority = current;
    }
}

/// Picks one coalescing key and emits `n` jobs under it.
fn pick_job(rng: &mut StdRng, spec: &WorkloadSpec, n: usize) -> Vec<Workload> {
    let want_table = !spec.table_names.is_empty() && rng.gen_bool(spec.table_fraction);
    if want_table {
        let name = &spec.table_names[rng.gen_range(0usize..spec.table_names.len())];
        vec![Workload::Table(name.clone()); n]
    } else {
        let scene = random_scene(rng);
        let precision = random_precision(rng);
        (0..n).map(|_| random_render(rng, scene, precision)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = WorkloadSpec { requests: 64, ..WorkloadSpec::default() };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job, y.job);
            assert_eq!(x.delay_before, y.delay_before);
        }
        let c = generate(&WorkloadSpec { seed: 43, ..spec });
        assert!(a.iter().zip(&c).any(|(x, y)| x.job != y.job), "different seed moves the jobs");
    }

    #[test]
    fn bursty_workloads_share_keys_within_bursts() {
        let spec = WorkloadSpec { requests: 100, ..WorkloadSpec::default() };
        let jobs = generate(&spec);
        // Every zero-delay job continues the burst of its predecessor and
        // must share that key.
        let mut coalescable = 0;
        for w in jobs.windows(2) {
            if w[1].delay_before.is_zero() {
                assert_eq!(w[0].job.key(), w[1].job.key(), "burst member changed key");
                coalescable += 1;
            }
        }
        assert!(coalescable > 20, "bursty pattern must offer coalescing ({coalescable} pairs)");
    }

    #[test]
    fn table_traffic_appears_when_registered() {
        let spec = WorkloadSpec {
            requests: 200,
            table_names: vec!["t1".into(), "t2".into()],
            table_fraction: 0.5,
            ..WorkloadSpec::default()
        };
        let jobs = generate(&spec);
        let tables = jobs.iter().filter(|t| matches!(t.job, Workload::Table(_))).count();
        assert!(tables > 10, "expected table traffic, got {tables}");
    }

    #[test]
    fn priorities_are_seeded_burst_coherent_and_job_neutral() {
        let spec = WorkloadSpec { requests: 120, ..WorkloadSpec::default() };
        let a = generate(&spec);
        let b = generate(&spec);
        assert!(a.iter().zip(&b).all(|(x, y)| x.priority == y.priority), "same seed, same classes");
        // Burst members inherit the burst head's class.
        for w in a.windows(2) {
            if w[1].delay_before.is_zero() {
                assert_eq!(w[0].priority, w[1].priority, "burst member changed class");
            }
        }
        // The default mix exercises more than one class.
        let distinct: std::collections::HashSet<_> = a.iter().map(|t| t.priority).collect();
        assert!(distinct.len() >= 2, "mix produced a single class: {distinct:?}");
        // Moving the mix must move classes but never the job sequence.
        let skewed = generate(&WorkloadSpec { priority_mix: [1.0, 0.0, 0.0], ..spec.clone() });
        assert!(skewed.iter().all(|t| t.priority == Priority::Interactive));
        for (x, y) in a.iter().zip(&skewed) {
            assert_eq!(x.job, y.job, "priority mix leaked into the job stream");
            assert_eq!(x.delay_before, y.delay_before);
        }
    }

    #[test]
    fn deadlines_stamp_every_job() {
        let spec = WorkloadSpec {
            requests: 16,
            deadline: Some(Duration::from_micros(500)),
            ..WorkloadSpec::default()
        };
        assert!(generate(&spec).iter().all(|t| t.deadline == Some(Duration::from_micros(500))));
        assert!(generate(&WorkloadSpec { deadline: None, ..spec }).iter().all(|t| t.deadline.is_none()));
    }

    #[test]
    fn patterns_parse() {
        assert_eq!(ArrivalPattern::parse("bursty"), Some(ArrivalPattern::Bursty));
        assert_eq!(ArrivalPattern::parse("heavy"), Some(ArrivalPattern::HeavyTailed));
        assert_eq!(ArrivalPattern::parse("uniform"), Some(ArrivalPattern::Uniform));
        assert_eq!(ArrivalPattern::parse("diurnal"), Some(ArrivalPattern::Diurnal));
        assert_eq!(ArrivalPattern::parse("flash"), Some(ArrivalPattern::FlashCrowd));
        assert_eq!(ArrivalPattern::parse("flash-crowd"), Some(ArrivalPattern::FlashCrowd));
        assert_eq!(ArrivalPattern::parse("nope"), None);
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        let spec = WorkloadSpec {
            requests: 400,
            pattern: ArrivalPattern::Diurnal,
            ..WorkloadSpec::default()
        };
        let jobs = generate(&spec);
        assert_eq!(jobs.len(), 400);
        assert_eq!(generate(&spec).iter().map(|t| t.delay_before).collect::<Vec<_>>(),
                   jobs.iter().map(|t| t.delay_before).collect::<Vec<_>>(),
                   "diurnal schedule is seed-deterministic");
        // Two cycles over 400 requests put a peak (s≈1, gap scale 0.25)
        // near index 50 and a trough (s≈0, gap scale 2.0) near index 150:
        // the day/night swing must be visible in the mean per-request gap.
        let mean_gap = |slice: &[TimedJob]| {
            slice.iter().map(|t| t.delay_before.as_nanos()).sum::<u128>() / slice.len() as u128
        };
        let peak = mean_gap(&jobs[30..70]);
        let trough = mean_gap(&jobs[130..170]);
        assert!(
            trough > peak * 2,
            "diurnal trough gap {trough} must dwarf peak gap {peak}"
        );
    }

    #[test]
    fn flash_crowd_window_is_hot_keyed_and_dense() {
        let spec = WorkloadSpec {
            requests: 1000,
            pattern: ArrivalPattern::FlashCrowd,
            table_names: vec!["t1".into()],
            ..WorkloadSpec::default()
        };
        let jobs = generate(&spec);
        assert_eq!(jobs.len(), 1000);
        let hot = SceneKind::ALL[(spec.seed % 3) as usize];
        let window = &jobs[460..540]; // strictly inside the [45%, 55%) crowd
        let hot_key = window.iter().all(|t| match &t.job {
            Workload::Render(j) => j.scene == hot && j.precision == RenderPrecision::Fp32,
            Workload::Table(_) => false,
        });
        assert!(hot_key, "the crowd window must request only the seeded hot scene");
        // Dense: the window's total idle time is far below the baseline's.
        let idle = |slice: &[TimedJob]| {
            slice.iter().map(|t| t.delay_before.as_nanos()).sum::<u128>()
        };
        assert!(
            idle(window) * 4 < idle(&jobs[100..180]),
            "crowd arrivals must be much denser than baseline"
        );
    }
}
