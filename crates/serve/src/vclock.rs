//! The single-threaded discrete-event mirror of the threaded serving
//! pipeline, shared by the one-server virtual harness
//! ([`crate::run_virtual`]) and the cluster simulator
//! ([`crate::cluster::run_cluster`]): per-lane bounded queues →
//! [`LaneScheduler`] → [`Batcher`] → a `2 × workers` batch queue →
//! virtual workers, all on one injected virtual clock.
//!
//! Every scheduling decision is a deterministic function of the admitted
//! schedule and the clock; batches are only *decided* here and rendered
//! for real afterwards, so thread width can never move an outcome. The
//! cluster layer adds three things the single-server harness leaves
//! dormant: a per-replica inflight gauge (router admission control), a
//! per-`(scene, precision)` model cache whose cold misses stretch the
//! batch's virtual service time, and [`VirtualPipeline::kill`] — the
//! fault-injection hook that orphans everything in flight so the front
//! door can fail it over.

use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

use crate::batch::{Batch, Batcher, BatcherConfig};
use crate::fault::{FaultInjector, InjectedFault};
use crate::metrics::{BatchMetric, FailMetric, RequestMetric, ShedMetric};
use crate::request::{BatchKey, ChunkSpan, Request};
use crate::sched::{LaneScheduler, SchedStep};
use crate::server::ServerConfig;
use crate::workload::TimedJob;

/// One virtual worker: when it frees up, and the batch it is serving (so
/// a kill can orphan in-service work instead of silently completing it).
struct VWorker {
    free_at: u64,
    running: Option<Running>,
}

/// A batch in service on a virtual worker.
struct Running {
    batch: Batch,
    start_ns: u64,
    service_ns: u64,
}

/// One externally visible pipeline event, emitted (only when event
/// tracking is on — cluster mode) at the instant it happens, in event
/// order. The cluster layer drains these after every fire/pump to feed
/// the failure detector (completions are the heartbeat), the CoDel
/// admission controller (queue delays at service start) and the hedging
/// arbiter (who started/completed/lost first).
#[derive(Debug, Clone, Copy)]
pub(crate) enum PipeEvent {
    /// A virtual worker took the chunk's batch after `queue_ns` waiting.
    Started { id: u64, chunk: u32, queue_ns: u64 },
    /// The chunk's batch completed service (it will be served).
    Completed { id: u64, chunk: u32 },
    /// A hedge-tracked chunk was shed by the scheduler; the terminal
    /// record is deferred to the cluster arbiter (only emitted for chunks
    /// marked via [`VirtualPipeline::mark_hedged`]).
    Shed { id: u64, chunk: u32, lane: usize, queue_ns: u64 },
    /// A hedge-tracked chunk was failed by the chaos injector; the
    /// terminal record is deferred to the cluster arbiter.
    Failed { id: u64, chunk: u32, lane: usize, queue_ns: u64 },
}

/// What [`VirtualPipeline::cancel`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CancelOutcome {
    /// The copy was still queued (lane, batcher, stalled or batch queue)
    /// and has been removed without a trace.
    Queued,
    /// The copy is in service on a virtual worker: it will finish, but
    /// its completion is suppressed — no metric, no response.
    InService,
    /// No live copy with that id exists here.
    NotFound,
}

/// The modeled per-replica model cache: which `(scene, precision)` render
/// keys are warm, plus cumulative hit/miss counters. A cold key stretches
/// its first batch by the configured cold-start cost (quantize, calibrate,
/// weight upload); a kill empties the warm set but keeps the counters —
/// restarts are exactly what makes hit ratios interesting.
struct ModelCache {
    warm: HashSet<BatchKey>,
    hits: u64,
    misses: u64,
}

/// The deterministic virtual pipeline for one (replica) server.
pub(crate) struct VirtualPipeline {
    sched_cfg: crate::sched::SchedConfig,
    /// Arbitrary real-clock origin the virtual clock is rendered onto (the
    /// [`Batcher`] speaks `Instant`); never a measurement.
    epoch: Instant,
    caps: Vec<usize>,
    batch_q_cap: usize,
    batcher_cfg: BatcherConfig,
    service_ns: u64,
    /// Size-aware service: extra virtual time per batch member, so a fat
    /// batch costs more than a singleton and overload is a function of
    /// batch composition. Zero (the default) reproduces the flat model.
    per_item_ns: u64,
    /// Gray-failure injection: every batch's virtual service time is
    /// multiplied by this (the `slow@T:R:F` fault). 1 = nominal speed.
    slow_factor: u64,
    cold_start_ns: u64,
    cache: Option<ModelCache>,
    /// Seeded chaos: a poisoned request fails the moment a worker would
    /// take its batch (mirroring the live quarantine outcome, minus the
    /// real-time retry loop); a delayed one stretches its batch's virtual
    /// service time. Same seeds as live mode, same poisoned set.
    injector: Option<FaultInjector>,
    sched: LaneScheduler,
    batcher: Batcher,
    vlanes: Vec<VecDeque<Request>>,
    /// Batches flushed while the batch queue was full: the scheduler
    /// stalls behind them, exactly like the threaded batcher parked in
    /// `send()` — which is where queueing (and deadline shedding) comes
    /// from under saturation.
    stalled: VecDeque<Batch>,
    batch_q: VecDeque<Batch>,
    workers: Vec<VWorker>,
    /// Requests admitted and not yet terminal (served, shed, or orphaned
    /// by a kill) — the router's per-replica admission-control gauge.
    inflight: usize,
    /// Whether to emit [`PipeEvent`]s (cluster mode with health, hedging
    /// or admission control on). Off by default: the single-server
    /// harness and the plain cluster pay nothing.
    track_events: bool,
    /// Events since the last [`VirtualPipeline::take_events`].
    events: Vec<PipeEvent>,
    /// `(id, chunk)` keys whose terminal outcomes are arbitrated by the
    /// cluster hedging layer: sheds/failures are emitted as events instead
    /// of recorded, completions are recorded *and* emitted (first
    /// completion wins).
    hedged: HashSet<(u64, u32)>,
    /// Losing hedge copies currently in service: their completion is
    /// dropped — no request metric, no response, the work was wasted.
    suppressed: HashSet<(u64, u32)>,
    pub(crate) decided: Vec<Batch>,
    pub(crate) request_metrics: Vec<RequestMetric>,
    pub(crate) batch_metrics: Vec<BatchMetric>,
    pub(crate) shed_metrics: Vec<ShedMetric>,
    pub(crate) fail_metrics: Vec<FailMetric>,
    pub(crate) rejected: Vec<usize>,
    /// Total virtual time the workers spent serving completed batches.
    pub(crate) busy_ns: u64,
    pub(crate) wall_ns: u64,
}

impl VirtualPipeline {
    /// A pipeline for `cfg` with flat per-batch service time `service_ns`;
    /// `with_cache` enables the modeled model cache (cold render keys pay
    /// `cold_start_ns` extra on their first batch after a cold start), and
    /// `injector` optionally adds seeded chaos (the same injector type —
    /// and seeds — the live server takes).
    pub(crate) fn with_injector(
        cfg: &ServerConfig,
        service_ns: u64,
        cold_start_ns: u64,
        with_cache: bool,
        injector: Option<FaultInjector>,
    ) -> Self {
        let caps = cfg.sched.capacities(cfg.queue_capacity);
        let workers = cfg.workers.max(1);
        let batcher_cfg = BatcherConfig { max_batch: cfg.max_batch, linger: cfg.linger };
        VirtualPipeline {
            sched_cfg: cfg.sched.clone(),
            epoch: Instant::now(),
            batch_q_cap: workers * 2,
            batcher_cfg,
            service_ns: service_ns.max(1),
            per_item_ns: 0,
            slow_factor: 1,
            cold_start_ns,
            cache: with_cache.then(|| ModelCache {
                warm: HashSet::new(),
                hits: 0,
                misses: 0,
            }),
            injector: injector.filter(|i| !i.is_empty()),
            sched: LaneScheduler::new(&cfg.sched),
            batcher: Batcher::new(batcher_cfg),
            vlanes: caps.iter().map(|_| VecDeque::new()).collect(),
            stalled: VecDeque::new(),
            batch_q: VecDeque::new(),
            workers: (0..workers).map(|_| VWorker { free_at: 0, running: None }).collect(),
            inflight: 0,
            track_events: false,
            events: Vec::new(),
            hedged: HashSet::new(),
            suppressed: HashSet::new(),
            decided: Vec::new(),
            request_metrics: Vec::new(),
            batch_metrics: Vec::new(),
            shed_metrics: Vec::new(),
            fail_metrics: Vec::new(),
            rejected: vec![0; caps.len()],
            busy_ns: 0,
            wall_ns: 0,
            caps,
        }
    }

    fn inst(&self, vt: u64) -> Instant {
        self.epoch + Duration::from_nanos(vt)
    }

    /// Requests admitted and not yet terminal.
    pub(crate) fn inflight(&self) -> usize {
        self.inflight
    }

    /// Sets the size-aware per-member service cost.
    pub(crate) fn set_per_item_ns(&mut self, per_item_ns: u64) {
        self.per_item_ns = per_item_ns;
    }

    /// Sets the gray-failure service-time multiplier (`slow@T:R:F`);
    /// factor 1 restores nominal speed. Batches already in service keep
    /// their committed completion time — only future takes slow down.
    pub(crate) fn set_slow_factor(&mut self, factor: u32) {
        self.slow_factor = u64::from(factor).max(1);
    }

    /// The current gray-failure multiplier.
    pub(crate) fn slow_factor(&self) -> u64 {
        self.slow_factor
    }

    /// Turns on [`PipeEvent`] emission (cluster resilience mode).
    pub(crate) fn enable_event_tracking(&mut self) {
        self.track_events = true;
    }

    /// Drains the events emitted since the last call, in event order.
    pub(crate) fn take_events(&mut self) -> Vec<PipeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Marks the `(id, chunk)` copy as hedge-arbitrated: its shed/failure
    /// is deferred to the cluster (emitted as an event), its completion is
    /// emitted too.
    pub(crate) fn mark_hedged(&mut self, id: u64, chunk: u32) {
        self.hedged.insert((id, chunk));
    }

    /// Whether any virtual worker is in service right now (the failure
    /// detector only expects progress from a busy replica).
    pub(crate) fn is_busy(&self) -> bool {
        self.workers.iter().any(|w| w.running.is_some())
    }

    /// Cancels the live copy of `(id, chunk)`, wherever it sits: removed
    /// outright if still queued, suppressed (completes without a trace) if
    /// already in service. The hedging layer calls this on the losing copy
    /// the instant the winning copy completes.
    pub(crate) fn cancel(&mut self, id: u64, chunk: ChunkSpan) -> CancelOutcome {
        self.hedged.remove(&(id, chunk.index));
        for lane in &mut self.vlanes {
            if let Some(pos) = lane.iter().position(|r| r.id == id && r.chunk == chunk) {
                lane.remove(pos);
                self.inflight -= 1;
                return CancelOutcome::Queued;
            }
        }
        if self.batcher.remove(id, chunk).is_some() {
            self.inflight -= 1;
            return CancelOutcome::Queued;
        }
        fn pull(q: &mut VecDeque<Batch>, id: u64, chunk: ChunkSpan) -> bool {
            for bi in 0..q.len() {
                if let Some(ri) =
                    q[bi].requests.iter().position(|r| r.id == id && r.chunk == chunk)
                {
                    q[bi].requests.remove(ri);
                    if q[bi].requests.is_empty() {
                        q.remove(bi);
                    }
                    return true;
                }
            }
            false
        }
        if pull(&mut self.stalled, id, chunk) || pull(&mut self.batch_q, id, chunk) {
            self.inflight -= 1;
            return CancelOutcome::Queued;
        }
        let in_service = self.workers.iter().any(|w| {
            w.running
                .as_ref()
                .is_some_and(|run| run.batch.requests.iter().any(|r| r.id == id && r.chunk == chunk))
        });
        if in_service {
            self.suppressed.insert((id, chunk.index));
            return CancelOutcome::InService;
        }
        CancelOutcome::NotFound
    }

    /// Cumulative `(hits, misses)` of the modeled model cache (zeros when
    /// the cache is disabled).
    pub(crate) fn cache_stats(&self) -> (u64, u64) {
        self.cache.as_ref().map_or((0, 0), |c| (c.hits, c.misses))
    }

    /// Admits one chunk of a scheduled job at virtual time `at`. A full
    /// (or zero-capacity) lane rejects — a virtual open-loop submitter
    /// cannot park. Returns whether the chunk entered its lane.
    pub(crate) fn admit(&mut self, id: u64, at: u64, tj: &TimedJob, chunk: ChunkSpan) -> bool {
        let arrival = Request {
            id,
            submitted_at: self.inst(at),
            priority: tj.priority,
            arrival_ns: at,
            deadline_ns: tj.deadline.map(|d| at + d.as_nanos() as u64),
            chunk,
            job: tj.job.clone(),
        };
        self.admit_request(arrival, at)
    }

    /// Admits an already-built request at virtual time `at` — the
    /// failover path: a request orphaned by a kill keeps its original
    /// `arrival_ns` and deadline, so its queue latency honestly includes
    /// the time it wasted on the dead replica.
    pub(crate) fn admit_request(&mut self, req: Request, at: u64) -> bool {
        let lane = self.sched_cfg.lane_of(req.priority);
        self.wall_ns = self.wall_ns.max(at);
        if self.caps[lane] == 0 || self.vlanes[lane].len() >= self.caps[lane] {
            self.rejected[lane] += 1;
            return false;
        }
        self.vlanes[lane].push_back(req);
        self.inflight += 1;
        true
    }

    /// Admits a hedge clone at virtual time `at` **without** counting a
    /// rejection on failure: a clone that finds no lane room simply never
    /// existed (the primary copy still owns the request), so it must not
    /// perturb the conservation law.
    pub(crate) fn admit_hedge(&mut self, req: Request, at: u64) -> bool {
        let lane = self.sched_cfg.lane_of(req.priority);
        if self.caps[lane] == 0 || self.vlanes[lane].len() >= self.caps[lane] {
            return false;
        }
        self.wall_ns = self.wall_ns.max(at);
        self.vlanes[lane].push_back(req);
        self.inflight += 1;
        true
    }

    /// Earliest pending timer: a busy worker finishing or a linger expiry.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        let completion = self
            .workers
            .iter()
            .filter(|w| w.running.is_some())
            .map(|w| w.free_at)
            .filter(|&t| t > now)
            .min();
        let linger = self
            .batcher
            .next_deadline()
            .map(|d| (d.saturating_duration_since(self.epoch).as_nanos() as u64).max(now));
        match (completion, linger) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fires every timer up to `to` (in time order), pumping after each.
    pub(crate) fn advance_to(&mut self, now: &mut u64, to: u64) {
        while let Some(t) = self.next_event(*now) {
            if t > to {
                break;
            }
            *now = t;
            self.fire(t);
        }
        *now = to.max(*now);
    }

    /// One timer firing at `t`: finished batches complete, linger-expired
    /// groups flush, then the pipeline pumps to its fixpoint.
    pub(crate) fn fire(&mut self, t: u64) {
        self.complete_finished(t);
        let when = self.inst(t);
        for b in self.batcher.expire(when) {
            self.stalled.push_back(b);
        }
        self.pump(t);
    }

    /// Retires every in-service batch whose completion time has passed:
    /// records its metrics (against its stored start time) and locks it
    /// into the decided trace. Runs before any new work is assigned, so a
    /// kill at `t` can only orphan batches still genuinely in service.
    fn complete_finished(&mut self, now: u64) {
        for w in &mut self.workers {
            if w.free_at <= now {
                if let Some(run) = w.running.take() {
                    let full_size = run.batch.requests.len();
                    self.batch_metrics.push(BatchMetric {
                        key: run.batch.key.clone(),
                        size: full_size,
                        service_ns: run.service_ns,
                        flush: run.batch.flush,
                    });
                    let mut batch = run.batch;
                    if !self.suppressed.is_empty() {
                        // Losing hedge copies finish without a trace: the
                        // winner already carries the request's record.
                        let suppressed = &mut self.suppressed;
                        batch.requests.retain(|req| !suppressed.remove(&(req.id, req.chunk.index)));
                    }
                    for req in &batch.requests {
                        self.request_metrics.push(RequestMetric {
                            id: req.id,
                            lane: self.sched_cfg.lane_of(req.priority),
                            queue_ns: run.start_ns - req.arrival_ns,
                            service_ns: run.service_ns,
                            batch_size: full_size,
                            chunk: req.chunk.index,
                            chunk_of: req.chunk.of,
                            deadline_missed: req
                                .deadline_ns
                                .is_some_and(|d| run.start_ns + run.service_ns >= d),
                        });
                        if self.track_events {
                            self.hedged.remove(&(req.id, req.chunk.index));
                            self.events
                                .push(PipeEvent::Completed { id: req.id, chunk: req.chunk.index });
                        }
                    }
                    self.busy_ns += run.service_ns;
                    self.inflight -= full_size;
                    if !batch.requests.is_empty() {
                        self.decided.push(batch);
                    }
                }
            }
        }
    }

    /// The virtual service time of `batch`: the flat per-batch cost, plus
    /// the size-aware per-member cost, plus the cold-start cost when the
    /// modeled cache misses on a render key (table batches carry no model
    /// and never pay it) — all stretched by the gray-failure slow factor.
    /// Chaos-injected delays are added by the caller, unscaled.
    fn service_for(&mut self, batch: &Batch) -> u64 {
        let mut svc = self
            .service_ns
            .saturating_add(self.per_item_ns.saturating_mul(batch.requests.len() as u64));
        if let Some(cache) = &mut self.cache {
            if matches!(batch.key, BatchKey::Render(..)) {
                if cache.warm.insert(batch.key.clone()) {
                    cache.misses += 1;
                    svc = svc.saturating_add(self.cold_start_ns);
                } else {
                    cache.hits += 1;
                }
            }
        }
        svc.saturating_mul(self.slow_factor)
    }

    /// Applies the chaos injector to a batch a worker is about to take:
    /// poisoned members fail on the spot (the virtual analogue of the live
    /// supervisor's quarantine verdict), delayed members stretch the
    /// batch's service time by the largest member delay. Returns `None`
    /// when no member survives, else the surviving batch and the extra
    /// service nanoseconds.
    fn apply_faults(&mut self, mut batch: Batch, now: u64) -> Option<(Batch, u64)> {
        let Some(inj) = self.injector else { return Some((batch, 0)) };
        let mut delay_ns = 0u64;
        let mut survivors = Vec::with_capacity(batch.requests.len());
        for req in batch.requests.drain(..) {
            match inj.decide(&req.job) {
                Some(InjectedFault::Panic) => {
                    let lane = self.sched_cfg.lane_of(req.priority);
                    let queue_ns = now - req.arrival_ns;
                    let key = (req.id, req.chunk.index);
                    if self.track_events && self.hedged.remove(&key) {
                        // A hedge-arbitrated copy: the cluster decides
                        // which copy's terminal outcome counts.
                        self.events.push(PipeEvent::Failed {
                            id: req.id,
                            chunk: req.chunk.index,
                            lane,
                            queue_ns,
                        });
                    } else if !self.suppressed.remove(&key) {
                        self.fail_metrics.push(FailMetric { id: req.id, lane, queue_ns });
                    }
                    self.inflight -= 1;
                }
                Some(InjectedFault::Delay(d)) => {
                    delay_ns = delay_ns.max(d);
                    survivors.push(req);
                }
                None => survivors.push(req),
            }
        }
        if survivors.is_empty() {
            return None;
        }
        batch.requests = survivors;
        Some((batch, delay_ns))
    }

    /// One fixpoint pass of the virtual pipeline at time `now`: idle
    /// workers take queued batches, freed queue slots unblock stalled
    /// flushes, and an unblocked scheduler keeps draining the lanes.
    pub(crate) fn pump(&mut self, now: u64) {
        self.complete_finished(now);
        loop {
            let mut progress = false;
            // Idle workers pick up queued batches (in queue order).
            while !self.batch_q.is_empty() {
                match self.workers.iter_mut().position(|w| w.free_at <= now && w.running.is_none())
                {
                    Some(wi) => {
                        let batch = self.batch_q.pop_front().expect("non-empty");
                        let (batch, delay_ns) = match self.apply_faults(batch, now) {
                            Some(survivors) => survivors,
                            None => {
                                // Every member was poisoned: nothing to run.
                                progress = true;
                                continue;
                            }
                        };
                        let service_ns = self.service_for(&batch) + delay_ns;
                        if self.track_events {
                            for req in &batch.requests {
                                self.events.push(PipeEvent::Started {
                                    id: req.id,
                                    chunk: req.chunk.index,
                                    queue_ns: now - req.arrival_ns,
                                });
                            }
                        }
                        self.workers[wi].free_at = now + service_ns;
                        self.workers[wi].running =
                            Some(Running { batch, start_ns: now, service_ns });
                        progress = true;
                    }
                    None => break,
                }
            }
            // Freed slots admit stalled flushes.
            while !self.stalled.is_empty() && self.batch_q.len() < self.batch_q_cap {
                self.batch_q.push_back(self.stalled.pop_front().expect("non-empty"));
                progress = true;
            }
            // The scheduler drains lanes only while nothing is stalled
            // ahead of it (the threaded batcher parks in send() likewise).
            if self.stalled.is_empty() {
                match self.sched.step(&mut self.vlanes, now) {
                    Some(SchedStep::Serve { req, .. }) => {
                        if let Some(b) = self.batcher.offer(req, self.inst(now)) {
                            self.stalled.push_back(b);
                        }
                        progress = true;
                    }
                    Some(SchedStep::Shed { lane, req }) => {
                        let queue_ns = now - req.arrival_ns;
                        if self.track_events && self.hedged.remove(&(req.id, req.chunk.index)) {
                            // Hedge-arbitrated: the cluster commits the
                            // shed only if no other copy survives.
                            self.events.push(PipeEvent::Shed {
                                id: req.id,
                                chunk: req.chunk.index,
                                lane,
                                queue_ns,
                            });
                        } else {
                            self.shed_metrics.push(ShedMetric { id: req.id, lane, queue_ns });
                        }
                        self.inflight -= 1;
                        progress = true;
                    }
                    None => {}
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Whether any admitted request is still queued, pending, or in
    /// service.
    pub(crate) fn has_pending(&self) -> bool {
        self.vlanes.iter().any(|l| !l.is_empty())
            || !self.batcher.is_empty()
            || !self.stalled.is_empty()
            || !self.batch_q.is_empty()
            || self.workers.iter().any(|w| w.running.is_some())
    }

    /// Keeps firing timers until the pipeline is empty. Every queued
    /// request either rides a linger/size flush or sheds; termination
    /// needs no shutdown drain because virtual time always reaches the
    /// linger.
    pub(crate) fn drain(&mut self, now: &mut u64) {
        while self.has_pending() {
            let t = self
                .next_event(*now)
                .expect("pending virtual work always has a next timer");
            *now = t;
            self.fire(t);
        }
        self.finalize(*now);
    }

    /// Locks in the final wall clock once no more events will reach this
    /// pipeline.
    pub(crate) fn finalize(&mut self, now: u64) {
        self.wall_ns = self.wall_ns.max(now);
    }

    /// Kills the replica at virtual time `t`: everything in flight —
    /// queued in a lane, pending in the batcher, stalled, queued for a
    /// worker, or in service — is orphaned and returned (in admission-id
    /// order) for the front door to fail over or shed. Scheduler and
    /// batcher state restart fresh and the model cache goes cold; the
    /// terminal counters (served/shed/rejected) and cache hit/miss
    /// totals survive, because a crash cannot un-serve history.
    pub(crate) fn kill(&mut self, t: u64) -> Vec<Request> {
        // Work that finished strictly by `t` completed before the crash.
        self.complete_finished(t);
        let mut orphans: Vec<Request> = Vec::new();
        for lane in &mut self.vlanes {
            orphans.extend(lane.drain(..));
        }
        for b in self.batcher.drain() {
            orphans.extend(b.requests);
        }
        for b in self.stalled.drain(..) {
            orphans.extend(b.requests);
        }
        for b in self.batch_q.drain(..) {
            orphans.extend(b.requests);
        }
        for w in &mut self.workers {
            if let Some(run) = w.running.take() {
                orphans.extend(run.batch.requests);
            }
            w.free_at = 0;
        }
        if !self.suppressed.is_empty() {
            // A losing hedge copy orphaned by the crash stays a loser:
            // the winner already carries the request, so it just vanishes.
            let suppressed = &mut self.suppressed;
            orphans.retain(|r| !suppressed.remove(&(r.id, r.chunk.index)));
        }
        self.hedged.clear();
        orphans.sort_unstable_by_key(|r| (r.id, r.chunk.index));
        self.sched = LaneScheduler::new(&self.sched_cfg);
        self.batcher = Batcher::new(self.batcher_cfg);
        if let Some(cache) = &mut self.cache {
            cache.warm.clear();
        }
        self.inflight = 0;
        self.wall_ns = self.wall_ns.max(t);
        orphans
    }
}
