//! The serving runtime: admission queue → batcher → worker pool → completion
//! board, with panic propagation and metrics.
//!
//! Serving concurrency (client / batcher / worker threads) is decoupled
//! from data-parallel width: the roles run on dedicated `std::thread`s,
//! while the *work* inside a batch (pixel rows, batch views) fans out over
//! `fnr_par`'s pool and therefore honours `FNR_THREADS`. Response bytes
//! are a pure function of each request, so the response set is
//! byte-identical at any width, worker count, or batching outcome —
//! timing only moves metrics.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use fnr_nerf::hashgrid::HashGridConfig;
use fnr_nerf::render::{render_reference_batch, BatchView, NgpModel, PreparedQuantized};
use fnr_par::mpmc::{Queue, RecvTimeout};
use fnr_tensor::Precision;

use crate::batch::{Batch, Batcher, BatcherConfig};
use crate::metrics::{BatchMetric, RequestMetric, ServeMetrics};
use crate::request::{image_bytes, BatchKey, RenderPrecision, Request, Response, Workload};

/// A named table generator the server can execute: `name → payload bytes`.
pub type TableFn = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// Registry of table generators servable through [`Workload::Table`].
#[derive(Default, Clone)]
pub struct TableRegistry {
    entries: Vec<(String, TableFn)>,
}

impl TableRegistry {
    /// An empty registry (render-only server).
    pub fn new() -> Self {
        TableRegistry::default()
    }

    /// Registers `name`; later registrations shadow earlier ones.
    pub fn register(&mut self, name: impl Into<String>, f: TableFn) {
        self.entries.insert(0, (name.into(), f));
    }

    /// Looks a generator up by name.
    pub fn resolve(&self, name: &str) -> Option<&TableFn> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, most recently registered first.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Serving-runtime knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Admission queue capacity. **Zero rejects every request** (the
    /// hard-overload posture); blocking submits otherwise park on a full
    /// queue (backpressure).
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Flush a batch at this many members.
    pub max_batch: usize,
    /// Flush an undersized batch once its oldest member waited this long.
    pub linger: Duration,
    /// Table generators servable through [`Workload::Table`].
    pub tables: TableRegistry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            workers: 2,
            max_batch: 8,
            linger: Duration::from_millis(2),
            tables: TableRegistry::new(),
        }
    }
}

/// Why a submit was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (non-blocking submit) or has capacity zero.
    Rejected,
    /// The server is shutting down (or a worker died).
    Closed,
}

/// Completion board: responses parked until their submitter collects them.
struct Board {
    state: Mutex<BoardState>,
    ready: Condvar,
}

struct BoardState {
    done: HashMap<u64, Response>,
    closed: bool,
}

impl Board {
    fn new() -> Self {
        Board { state: Mutex::new(BoardState { done: HashMap::new(), closed: false }), ready: Condvar::new() }
    }

    fn post(&self, responses: &[Response]) {
        let mut st = self.state.lock().unwrap();
        for r in responses {
            st.done.insert(r.id, r.clone());
        }
        drop(st);
        self.ready.notify_all();
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    fn wait(&self, id: u64) -> Option<Response> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(r) = st.done.get(&id) {
                return Some(r.clone());
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn drain_sorted(&self) -> Vec<Response> {
        let mut st = self.state.lock().unwrap();
        let mut out: Vec<Response> = st.done.drain().map(|(_, r)| r).collect();
        out.sort_unstable_by_key(|r| r.id);
        out
    }
}

/// The submission handle handed to the drive closure of [`run`]. `Sync`,
/// so closed-loop drivers can share it across client threads.
pub struct Client<'s> {
    zero_capacity: bool,
    queue: Queue<Request>,
    next_id: AtomicU64,
    rejected: AtomicUsize,
    board: &'s Board,
}

impl Client<'_> {
    /// Admits `job`, parking while the queue is full (backpressure).
    /// Returns the monotone request id.
    pub fn submit(&self, job: Workload) -> Result<u64, SubmitError> {
        if self.zero_capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let req = Request { id, submitted_at: Instant::now(), job };
        match self.queue.send(req) {
            Ok(()) => Ok(id),
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Closed)
            }
        }
    }

    /// Admits `job` without parking; a full queue rejects.
    pub fn try_submit(&self, job: Workload) -> Result<u64, SubmitError> {
        if self.zero_capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let req = Request { id, submitted_at: Instant::now(), job };
        match self.queue.try_send(req) {
            Ok(()) => Ok(id),
            Err(fnr_par::mpmc::TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Rejected)
            }
            Err(fnr_par::mpmc::TrySendError::Closed(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Closed)
            }
        }
    }

    /// Parks until request `id` completes (closed-loop clients). `None` if
    /// the server shut down without answering it.
    pub fn wait(&self, id: u64) -> Option<Response> {
        self.board.wait(id)
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// All responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Aggregate metrics (including the response-set digest).
    pub metrics: ServeMetrics,
}

/// Runs a server for the lifetime of `drive`: spawns the batcher and
/// worker threads, hands `drive` a [`Client`], and shuts the pipeline
/// down when it returns (pending requests are drained, not dropped).
///
/// # Panics
///
/// Re-raises any panic from a worker (a poisoned batch takes the run
/// down rather than silently losing requests).
pub fn run<R: Send>(cfg: &ServerConfig, drive: impl FnOnce(&Client) -> R + Send) -> (R, ServeReport) {
    let start = Instant::now();
    let request_queue: Queue<Request> = Queue::bounded(cfg.queue_capacity.max(1));
    // Batch hand-off is sized to keep workers busy without unbounded
    // buffering ahead of them.
    let batch_queue: Queue<Batch> = Queue::bounded(cfg.workers.max(1) * 2);
    let board = Board::new();
    let request_metrics: Mutex<Vec<RequestMetric>> = Mutex::new(Vec::new());
    let batch_metrics: Mutex<Vec<BatchMetric>> = Mutex::new(Vec::new());
    let worker_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let client = Client {
        zero_capacity: cfg.queue_capacity == 0,
        queue: request_queue.clone(),
        next_id: AtomicU64::new(0),
        rejected: AtomicUsize::new(0),
        board: &board,
    };

    let drive_result = std::thread::scope(|s| {
        let batcher_cfg = BatcherConfig { max_batch: cfg.max_batch, linger: cfg.linger };
        {
            let reqs = request_queue.clone();
            let batches = batch_queue.clone();
            s.spawn(move || batcher_loop(batcher_cfg, &reqs, &batches));
        }
        for _ in 0..cfg.workers.max(1) {
            let reqs = request_queue.clone();
            let batches = batch_queue.clone();
            let board = &board;
            let req_m = &request_metrics;
            let batch_m = &batch_metrics;
            let panic_slot = &worker_panic;
            let tables = &cfg.tables;
            s.spawn(move || {
                worker_loop(&reqs, &batches, tables, board, req_m, batch_m, panic_slot);
            });
        }
        // A panicking drive closure must still close the admission queue,
        // or scope would join batcher/workers parked forever in recv();
        // catch, shut down, rethrow below.
        let r = catch_unwind(AssertUnwindSafe(|| drive(&client)));
        // Shutdown: no more admissions; the batcher drains what is queued
        // and closes the batch queue; workers drain that and exit.
        request_queue.close();
        r
    });
    let drive_result = match drive_result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    };

    if let Some(payload) = worker_panic.into_inner().unwrap() {
        resume_unwind(payload);
    }

    let responses = board.drain_sorted();
    let metrics = ServeMetrics::aggregate(
        &request_metrics.into_inner().unwrap(),
        &batch_metrics.into_inner().unwrap(),
        &responses,
        client.rejected.load(Ordering::Relaxed),
        start.elapsed().as_nanos() as u64,
        cfg.workers.max(1),
        fnr_par::current_num_threads(),
    );
    (drive_result, ServeReport { responses, metrics })
}

/// Pulls admitted requests, coalesces them, and forwards flushed batches.
/// Greedily drains the request queue after every pop so bursts coalesce
/// even when workers are idle.
fn batcher_loop(cfg: BatcherConfig, requests: &Queue<Request>, batches: &Queue<Batch>) {
    let mut batcher = Batcher::new(cfg);
    loop {
        let popped = match batcher.next_deadline() {
            None => match requests.recv() {
                Some(r) => Some(r),
                None => break,
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    for b in batcher.expire(now) {
                        if batches.send(b).is_err() {
                            return; // workers died; nothing left to do
                        }
                    }
                    continue;
                }
                match requests.recv_timeout(deadline - now) {
                    RecvTimeout::Item(r) => Some(r),
                    RecvTimeout::TimedOut => continue,
                    RecvTimeout::Closed => break,
                }
            }
        };
        if let Some(first) = popped {
            let mut flushed = Vec::new();
            if let Some(b) = batcher.offer(first, Instant::now()) {
                flushed.push(b);
            }
            while let Some(more) = requests.try_recv() {
                if let Some(b) = batcher.offer(more, Instant::now()) {
                    flushed.push(b);
                }
            }
            for b in flushed {
                if batches.send(b).is_err() {
                    return;
                }
            }
        }
    }
    for b in batcher.drain() {
        if batches.send(b).is_err() {
            return;
        }
    }
    batches.close();
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    requests: &Queue<Request>,
    batches: &Queue<Batch>,
    tables: &TableRegistry,
    board: &Board,
    request_metrics: &Mutex<Vec<RequestMetric>>,
    batch_metrics: &Mutex<Vec<BatchMetric>>,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) {
    while let Some(batch) = batches.recv() {
        let exec_start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| execute_batch(&batch, tables))) {
            Ok(responses) => {
                let service_ns = exec_start.elapsed().as_nanos() as u64;
                {
                    let mut bm = batch_metrics.lock().unwrap();
                    bm.push(BatchMetric {
                        key: batch.key.clone(),
                        size: batch.requests.len(),
                        service_ns,
                        flush: batch.flush,
                    });
                }
                {
                    let mut rm = request_metrics.lock().unwrap();
                    for req in &batch.requests {
                        rm.push(RequestMetric {
                            id: req.id,
                            queue_ns: exec_start.duration_since(req.submitted_at).as_nanos() as u64,
                            service_ns,
                            batch_size: batch.requests.len(),
                        });
                    }
                }
                board.post(&responses);
            }
            Err(payload) => {
                // First panic wins; unblock every parked thread so the run
                // unwinds instead of deadlocking, then rethrow in `run`.
                panic_slot.lock().unwrap().get_or_insert(payload);
                requests.close();
                batches.close();
                board.close();
                return;
            }
        }
    }
}

/// The per-scene NGP model, built once per process: it is a pure function
/// of the scene's fixed seed, so caching it cannot move response bytes —
/// it only takes hash-grid + MLP construction off the per-batch hot path.
fn scene_model(scene: crate::request::SceneKind) -> &'static NgpModel {
    use crate::request::SceneKind;
    static MODELS: std::sync::OnceLock<[NgpModel; 3]> = std::sync::OnceLock::new();
    let models = MODELS.get_or_init(|| {
        [SceneKind::Mic, SceneKind::Lego, SceneKind::Palace]
            .map(|s| NgpModel::new(HashGridConfig::small(), 16, s.model_seed()))
    });
    match scene {
        SceneKind::Mic => &models[0],
        SceneKind::Lego => &models[1],
        SceneKind::Palace => &models[2],
    }
}

/// One entry of the prepared-quantized-model cache: the lazily-built
/// prepared model plus its usage counters.
struct QuantEntry {
    prepared: OnceLock<PreparedQuantized>,
    /// Times the quantize+calibrate closure actually ran (1 after first
    /// use, forever — the invariant [`quantized_cache_stats`] exposes).
    builds: AtomicU64,
    /// Batches served through this entry.
    uses: AtomicU64,
}

/// Counters for one `(scene, precision)` entry of the prepared-model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantCacheStats {
    /// Times the model was quantized+calibrated (stays at 1 after the
    /// first batch — later batches perform zero quantize/calibrate work).
    pub builds: u64,
    /// Batches rendered through the cached model.
    pub uses: u64,
}

/// Key and map types of the prepared-quantized-model cache.
type QuantKey = (crate::request::SceneKind, Precision);
type QuantMap = Mutex<HashMap<QuantKey, Arc<QuantEntry>>>;

fn quant_cache() -> &'static QuantMap {
    static CACHE: std::sync::OnceLock<QuantMap> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide memoized [`PreparedQuantized`] for `(scene,
/// precision)`: quantize+calibrate runs exactly once per key (the first
/// batch pays it; every later batch is pure rendering). The prepared model
/// is a deterministic function of the scene's fixed-seed [`NgpModel`] and
/// the precision, so caching cannot move response bytes.
fn prepared_quantized(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> Arc<QuantEntry> {
    let entry = {
        let mut map = quant_cache().lock().unwrap();
        Arc::clone(map.entry((scene, precision)).or_insert_with(|| {
            Arc::new(QuantEntry {
                prepared: OnceLock::new(),
                builds: AtomicU64::new(0),
                uses: AtomicU64::new(0),
            })
        }))
    };
    // Build outside the map lock: a slow calibration for one key must not
    // serialize unrelated keys. OnceLock makes concurrent same-key callers
    // race to run the closure at most once.
    entry.prepared.get_or_init(|| {
        entry.builds.fetch_add(1, Ordering::Relaxed);
        scene_model(scene).prepare_quantized(precision)
    });
    entry
}

/// Usage counters of the prepared-quantized-model cache entry for
/// `(scene, precision)` — all zeros if no quantized batch has touched that
/// key yet. Test hook for the hot-path contract: after the first batch,
/// `builds` stays at 1 while `uses` keeps growing.
pub fn quantized_cache_stats(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> QuantCacheStats {
    let map = quant_cache().lock().unwrap();
    map.get(&(scene, precision)).map_or(QuantCacheStats::default(), |e| QuantCacheStats {
        builds: e.builds.load(Ordering::Relaxed),
        uses: e.uses.load(Ordering::Relaxed),
    })
}

/// Executes one coalesced batch. Render batches share one model (and for
/// quantized precisions, one quantization + calibration); table batches
/// run the generator once and share the bytes.
fn execute_batch(batch: &Batch, tables: &TableRegistry) -> Vec<Response> {
    match &batch.key {
        BatchKey::Render(scene, precision) => {
            let views: Vec<BatchView> = batch
                .requests
                .iter()
                .map(|r| match &r.job {
                    Workload::Render(j) => BatchView {
                        camera: j.camera(),
                        width: j.width,
                        height: j.height,
                        spp: j.spp,
                    },
                    Workload::Table(_) => unreachable!("table job under a render key"),
                })
                .collect();
            let images = match precision {
                RenderPrecision::Fp32 => render_reference_batch(scene.scene(), &views),
                RenderPrecision::Quantized(p) => {
                    let entry = prepared_quantized(*scene, *p);
                    entry.uses.fetch_add(1, Ordering::Relaxed);
                    entry.prepared.get().expect("initialized by prepared_quantized").render_batch(&views)
                }
            };
            batch
                .requests
                .iter()
                .zip(&images)
                .map(|(r, img)| Response { id: r.id, bytes: image_bytes(img) })
                .collect()
        }
        BatchKey::Table(name) => {
            let generator = tables
                .resolve(name)
                .unwrap_or_else(|| panic!("unknown table generator `{name}`"));
            let bytes = generator();
            batch.requests.iter().map(|r| Response { id: r.id, bytes: bytes.clone() }).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, SceneKind};

    fn tiny_render(seed: u64) -> Workload {
        Workload::Render(RenderJob {
            scene: SceneKind::Mic,
            precision: RenderPrecision::Fp32,
            width: 4,
            height: 4,
            spp: 2,
            camera_seed: seed,
        })
    }

    #[test]
    fn serves_render_and_table_requests() {
        let mut cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        cfg.tables.register("hello", Arc::new(|| b"hello table".to_vec()));
        let (ids, report) = run(&cfg, |client| {
            let a = client.submit(tiny_render(1)).unwrap();
            let b = client.submit(tiny_render(2)).unwrap();
            let t = client.submit(Workload::Table("hello".into())).unwrap();
            let resp = client.wait(t).expect("table answered");
            assert_eq!(resp.bytes, b"hello table");
            (a, b, t)
        });
        assert_eq!(ids, (0, 1, 2), "ids are monotone from zero");
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.metrics.requests, 3);
        assert!(report.metrics.batches >= 1 && report.metrics.batches <= 3);
        // Render payload header: 4×4.
        assert_eq!(&report.responses[0].bytes[0..4], &4u32.to_le_bytes());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let cfg = ServerConfig { queue_capacity: 0, ..ServerConfig::default() };
        let (result, report) = run(&cfg, |client| {
            let r = client.submit(tiny_render(0));
            let t = client.try_submit(tiny_render(1));
            (r, t)
        });
        assert_eq!(result, (Err(SubmitError::Rejected), Err(SubmitError::Rejected)));
        assert!(report.responses.is_empty());
        assert_eq!(report.metrics.rejected, 2);
        assert_eq!(report.metrics.requests, 0);
    }

    #[test]
    fn worker_panic_propagates_and_unblocks_waiters() {
        let cfg = ServerConfig::default(); // empty registry: unknown table panics
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run(&cfg, |client| {
                let id = client.submit(Workload::Table("no-such-generator".into())).unwrap();
                // The waiter must unblock (None), not deadlock, before the
                // panic resurfaces from `run`.
                assert!(client.wait(id).is_none(), "waiter unblocked by worker failure");
            })
        }));
        let payload = outcome.expect_err("worker panic must cross run()");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("no-such-generator"), "panic message surfaced: {msg}");
    }

    #[test]
    fn quantize_and_calibrate_run_once_per_scene_precision() {
        // `builds` is a per-key process-wide invariant: whichever test (or
        // concurrent batch) touches the key first builds it, and it must
        // never be built again.
        let key_scene = SceneKind::Palace;
        let key_precision = Precision::Int16;
        let job = |seed| {
            Workload::Render(RenderJob {
                scene: key_scene,
                precision: RenderPrecision::Quantized(key_precision),
                width: 4,
                height: 4,
                spp: 2,
                camera_seed: seed,
            })
        };
        let cfg = ServerConfig::default();
        let (bytes, _report) = run(&cfg, |client| {
            // Sequential submit+wait pairs force two separate batches.
            let a = client.submit(job(9)).unwrap();
            let first = client.wait(a).expect("answered").bytes;
            let b = client.submit(job(9)).unwrap();
            let second = client.wait(b).expect("answered").bytes;
            (first, second)
        });
        assert_eq!(bytes.0, bytes.1, "cached prepared model must not move response bytes");
        let stats = quantized_cache_stats(key_scene, key_precision);
        assert_eq!(stats.builds, 1, "quantize+calibrate must run exactly once for the key");
        assert!(stats.uses >= 2, "both batches served through the cache: {stats:?}");
    }

    #[test]
    fn responses_survive_shutdown_drain() {
        // Submit with a huge linger and no waiting: shutdown must flush the
        // batcher (Drain) and still answer everything.
        let cfg = ServerConfig {
            linger: Duration::from_secs(60),
            max_batch: 1000,
            ..ServerConfig::default()
        };
        let (n, report) = run(&cfg, |client| {
            for i in 0..10 {
                client.submit(tiny_render(i)).unwrap();
            }
            10
        });
        assert_eq!(n, 10);
        assert_eq!(report.responses.len(), 10);
        assert!(report.metrics.flushed_drain >= 1, "drain flush recorded");
        let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>(), "sorted by id");
    }
}
