//! The serving runtime: multi-lane admission → scheduler → batcher →
//! worker pool → completion board, with worker supervision and metrics.
//!
//! Serving concurrency (client / scheduler / worker threads) is decoupled
//! from data-parallel width: the roles run on dedicated `std::thread`s,
//! while the *work* inside a batch (pixel rows, batch views) fans out over
//! `fnr_par`'s pool and therefore honours `FNR_THREADS`. Response bytes
//! are a pure function of each request, so the response set is
//! byte-identical at any width, worker count, or batching outcome —
//! timing only moves metrics. With deadlines disabled (the default)
//! scheduling can only *reorder* requests, never drop them, so any lane
//! policy — including the degenerate single-lane config — reproduces the
//! FIFO server's response-set digest exactly.
//!
//! Admission is no longer one FIFO queue: requests enter the per-class
//! bounded lane of [`fnr_par::mpmc::Lanes`] (backpressure per lane), and
//! the scheduler thread drains them through [`LaneScheduler`] — weighted
//! deficit across lanes, per-key round robin within a lane, and
//! shed-on-dequeue for requests whose deadline passed while queued.
//!
//! # Fault tolerance
//!
//! A panicking batch no longer takes the run down. Workers execute every
//! batch under `catch_unwind`; a panic ships the batch to the supervisor
//! ([`crate::supervise`]) and retires the worker thread. The supervisor
//! respawns workers within a bounded restart budget and **bisects** the
//! crashed batch to isolate the poisoned request(s): innocents are
//! re-served with byte-identical payloads, the culprits retry per
//! [`RetryPolicy`] and finally complete as [`WaitOutcome::Failed`] —
//! every admitted request terminates, so waiters never hang. A per-key
//! [`CircuitBreaker`] can fast-fail keys with persistent failure streaks,
//! and under queue-depth overload the [`Brownout`] controller downgrades
//! Standard/Batch renders one precision step instead of shedding them.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fnr_nerf::hashgrid::HashGridConfig;
use fnr_nerf::render::{render_reference_rows, BatchView, NgpModel, PreparedQuantized};
use fnr_par::mpmc::{Lanes, Queue, RecvTimeout};
use fnr_tensor::Precision;

use crate::batch::{Batch, Batcher, BatcherConfig};
use crate::fault::{
    degrade_precision, Brownout, BrownoutConfig, CircuitBreaker, FaultInjector, InjectedFault,
    RetryPolicy,
};
use crate::metrics::{
    BatchMetric, DegradeMetric, FailMetric, LaneAccounting, RequestMetric, RobustTotals,
    ServeMetrics, ShedMetric,
};
use crate::request::{
    chunk_image_bytes, effective_chunks, row_band, BatchKey, ChunkOutcome, ChunkResponse,
    ChunkSpan, RenderPrecision, Request, Response, Workload,
};
use crate::sched::{LaneScheduler, Priority, SchedConfig, SchedStep};
use crate::supervise::{panic_reason, supervisor_loop, CrashReport, SuperviseConfig};

/// A named table generator the server can execute: `name → payload bytes`.
pub type TableFn = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// Registry of table generators servable through [`Workload::Table`].
#[derive(Default, Clone)]
pub struct TableRegistry {
    entries: Vec<(String, TableFn)>,
}

impl TableRegistry {
    /// An empty registry (render-only server).
    pub fn new() -> Self {
        TableRegistry::default()
    }

    /// Registers `name`; later registrations shadow earlier ones.
    pub fn register(&mut self, name: impl Into<String>, f: TableFn) {
        self.entries.insert(0, (name.into(), f));
    }

    /// Looks a generator up by name.
    pub fn resolve(&self, name: &str) -> Option<&TableFn> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, most recently registered first.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Serving-runtime knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Default per-lane admission capacity (lanes may override via
    /// [`SchedConfig`]). **Zero rejects every request** whose lane does
    /// not override it (the hard-overload posture); blocking submits
    /// otherwise park on a full lane (backpressure).
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Flush a batch at this many members.
    pub max_batch: usize,
    /// Flush an undersized batch once its oldest member waited this long.
    pub linger: Duration,
    /// Row-band chunks a render request splits into at admission (clamped
    /// to the frame height per request; tables never split). Chunks flow
    /// through the lanes/scheduler/batcher independently and stream back
    /// in row order through a per-request reassembly slot; `1` (the
    /// default) reproduces the unchunked server byte-for-byte.
    pub chunks: usize,
    /// The scheduling policy: lanes, weights, class mapping.
    pub sched: SchedConfig,
    /// Table generators servable through [`Workload::Table`].
    pub tables: TableRegistry,
    /// Worker supervision: restart budget and respawn backoff.
    pub supervise: SuperviseConfig,
    /// Per-request retry policy for quarantined (panicking) requests.
    pub retry: RetryPolicy,
    /// Per-(scene, precision) circuit breaker (threshold 0 disables).
    pub breaker: crate::fault::BreakerConfig,
    /// Precision brownout under queue-depth overload (off by default).
    pub brownout: BrownoutConfig,
    /// Seeded chaos injection (None in production postures).
    pub injector: Option<FaultInjector>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            workers: 2,
            max_batch: 8,
            linger: Duration::from_millis(2),
            chunks: 1,
            sched: SchedConfig::priority_lanes(),
            tables: TableRegistry::new(),
            supervise: SuperviseConfig::default(),
            retry: RetryPolicy::default(),
            breaker: crate::fault::BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
            injector: None,
        }
    }
}

/// Why a submit was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The lane is at capacity (non-blocking submit) or has capacity zero.
    Rejected,
    /// The server is draining and no longer admits requests.
    Closed,
}

/// How a request left the server, as seen by its submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The request was rendered; here is the payload.
    Answered(Response),
    /// The request's deadline passed while it queued: the scheduler shed
    /// it without rendering.
    Shed,
    /// The request kept panicking (or its key's breaker was open): the
    /// supervisor quarantined it and exhausted its retry budget. The
    /// string is the final failure reason.
    Failed(String),
    /// The server shut down before answering.
    Closed,
}

/// What the board parks for a finished request.
#[derive(Debug, Clone)]
enum Completion {
    Answered(Response),
    Shed,
    Failed(String),
}

/// One chunk's slot in a request's reassembly stream.
#[derive(Debug, Clone)]
enum ChunkCell {
    Pending,
    Served(Vec<u8>),
    Shed,
    Failed(String),
}

/// Per-request reassembly slot: one cell per chunk, opened at admission.
/// Chunks land in any order; the request resolves once every cell is
/// terminal. Cells stay readable afterwards so streaming clients can
/// still collect chunks they have not consumed yet.
struct StreamSlot {
    cells: Vec<ChunkCell>,
    pending: usize,
}

/// Completion board: outcomes parked until their submitter collects them.
/// Chunked requests reassemble here — workers post individual chunks, and
/// the whole-request [`Completion`] materializes (failure-first, then
/// shed, then the row-order concatenation of the chunk payloads) when the
/// last chunk lands.
pub(crate) struct Board {
    state: Mutex<BoardState>,
    ready: Condvar,
}

struct BoardState {
    streams: HashMap<u64, StreamSlot>,
    done: HashMap<u64, Completion>,
    closed: bool,
}

impl Board {
    fn new() -> Self {
        Board {
            state: Mutex::new(BoardState {
                streams: HashMap::new(),
                done: HashMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Opens the reassembly slot for request `id` with `of` chunk cells.
    /// Must happen before the first chunk is enqueued, so no completion
    /// can race the slot's existence.
    fn open(&self, id: u64, of: u32) {
        let mut st = self.state.lock().unwrap();
        st.streams.insert(id, StreamSlot { cells: vec![ChunkCell::Pending; of as usize], pending: of as usize });
    }

    /// Discards a slot opened by [`Board::open`] when admission of the
    /// first chunk failed — the request was never in the server.
    fn abandon(&self, id: u64) {
        self.state.lock().unwrap().streams.remove(&id);
    }

    /// Posts a batch of served chunks (one board lock for the whole batch).
    pub(crate) fn post_served(&self, responses: Vec<ChunkResponse>) {
        let mut st = self.state.lock().unwrap();
        for r in responses {
            st.land(r.id, r.chunk.index, ChunkCell::Served(r.bytes));
        }
        drop(st);
        self.ready.notify_all();
    }

    fn post_shed(&self, id: u64, index: u32) {
        self.state.lock().unwrap().land(id, index, ChunkCell::Shed);
        self.ready.notify_all();
    }

    pub(crate) fn post_failed(&self, id: u64, index: u32, reason: String) {
        self.state.lock().unwrap().land(id, index, ChunkCell::Failed(reason));
        self.ready.notify_all();
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    fn wait(&self, id: u64) -> WaitOutcome {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(c) = st.done.get(&id) {
                return match c {
                    Completion::Answered(r) => WaitOutcome::Answered(r.clone()),
                    Completion::Shed => WaitOutcome::Shed,
                    Completion::Failed(reason) => WaitOutcome::Failed(reason.clone()),
                };
            }
            if st.closed {
                return WaitOutcome::Closed;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Parks until chunk `index` of request `id` is terminal — the
    /// streaming read: chunk 0 typically resolves well before the full
    /// render, and chunks can be consumed in row order as they land.
    fn wait_chunk(&self, id: u64, index: u32) -> ChunkOutcome {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(slot) = st.streams.get(&id) {
                match slot.cells.get(index as usize) {
                    Some(ChunkCell::Served(bytes)) => return ChunkOutcome::Served(bytes.clone()),
                    Some(ChunkCell::Shed) => return ChunkOutcome::Shed,
                    Some(ChunkCell::Failed(reason)) => return ChunkOutcome::Failed(reason.clone()),
                    Some(ChunkCell::Pending) => {}
                    None => return ChunkOutcome::Closed, // index out of range
                }
            }
            if st.closed {
                return ChunkOutcome::Closed;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn drain_sorted(&self) -> Vec<Response> {
        let mut st = self.state.lock().unwrap();
        let mut out: Vec<Response> = st
            .done
            .drain()
            .filter_map(|(_, c)| match c {
                Completion::Answered(r) => Some(r),
                Completion::Shed | Completion::Failed(_) => None,
            })
            .collect();
        out.sort_unstable_by_key(|r| r.id);
        out
    }
}

impl BoardState {
    /// Lands one terminal chunk cell; resolves the whole request when its
    /// last chunk lands. Resolution order: any failed chunk fails the
    /// request (first failure in row order wins), else any shed chunk
    /// sheds it, else the payload is the row-order concatenation of the
    /// chunk bytes — byte-identical to the unchunked render.
    fn land(&mut self, id: u64, index: u32, cell: ChunkCell) {
        let Some(slot) = self.streams.get_mut(&id) else { return };
        let Some(target) = slot.cells.get_mut(index as usize) else { return };
        if !matches!(target, ChunkCell::Pending) {
            return; // already terminal (teardown race) — first outcome wins
        }
        *target = cell;
        slot.pending -= 1;
        if slot.pending > 0 {
            return;
        }
        let mut failed: Option<&str> = None;
        let mut shed = false;
        let mut len = 0usize;
        for c in &slot.cells {
            match c {
                ChunkCell::Failed(reason) => {
                    failed = failed.or(Some(reason));
                }
                ChunkCell::Shed => shed = true,
                ChunkCell::Served(b) => len += b.len(),
                ChunkCell::Pending => unreachable!("pending hit zero"),
            }
        }
        let completion = if let Some(reason) = failed {
            Completion::Failed(reason.to_string())
        } else if shed {
            Completion::Shed
        } else {
            let mut bytes = Vec::with_capacity(len);
            for c in &slot.cells {
                if let ChunkCell::Served(b) = c {
                    bytes.extend_from_slice(b);
                }
            }
            Completion::Answered(Response { id, bytes })
        };
        self.done.insert(id, completion);
    }
}

/// Everything the serving roles share: queues, board, metrics sinks,
/// resilience policies and robustness counters. One `Arc` of this is held
/// by the [`Server`], every [`Client`], and every role thread.
pub(crate) struct ServerShared {
    pub(crate) epoch: Instant,
    pub(crate) sched: SchedConfig,
    pub(crate) tables: TableRegistry,
    pub(crate) batcher_cfg: BatcherConfig,
    pub(crate) lanes: Lanes<Request>,
    /// Resolved per-lane capacities; zero means hard-reject at admission.
    pub(crate) lane_caps: Vec<usize>,
    pub(crate) batches: Queue<Batch>,
    pub(crate) board: Board,
    pub(crate) next_id: AtomicU64,
    pub(crate) rejected: Vec<AtomicUsize>,
    pub(crate) request_metrics: Mutex<Vec<RequestMetric>>,
    pub(crate) batch_metrics: Mutex<Vec<BatchMetric>>,
    pub(crate) shed_metrics: Mutex<Vec<ShedMetric>>,
    pub(crate) fail_metrics: Mutex<Vec<FailMetric>>,
    pub(crate) degrade_metrics: Mutex<Vec<DegradeMetric>>,
    /// Batches completed successfully — the supervisor reads this to
    /// reset its consecutive-crash streak.
    pub(crate) served_batches: AtomicUsize,
    pub(crate) worker_restarts: AtomicUsize,
    pub(crate) retried: AtomicUsize,
    pub(crate) breaker: Mutex<CircuitBreaker>,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) retry: RetryPolicy,
    pub(crate) supervise: SuperviseConfig,
    pub(crate) brownout_cfg: BrownoutConfig,
    /// Set by [`Server::drain`] once the pipeline threads are joined; the
    /// supervisor exits on its next idle tick.
    pub(crate) shutdown: AtomicBool,
    pub(crate) workers: usize,
    /// Configured row-band chunk count (see [`ServerConfig::chunks`]).
    pub(crate) chunks: usize,
}

impl ServerShared {
    /// Nanoseconds since the server epoch (the breaker clock).
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// The submission handle handed out by [`Server::client`] (and to the
/// drive closure of [`run`]). `Sync`, so closed-loop drivers can share it
/// across client threads; cheap to clone.
#[derive(Clone)]
pub struct Client {
    shared: Arc<ServerShared>,
}

impl Client {
    fn admit(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<u64, SubmitError> {
        let sh = &*self.shared;
        let lane = sh.sched.lane_of(priority);
        let k = effective_chunks(sh.chunks, &job);
        if sh.lane_caps[lane] == 0 {
            sh.rejected[lane].fetch_add(k as usize, Ordering::Relaxed);
            return Err(SubmitError::Rejected);
        }
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let arrival_ns = sh.epoch.elapsed().as_nanos() as u64;
        let submitted_at = Instant::now();
        let deadline_ns = deadline.map(|d| arrival_ns.saturating_add(d.as_nanos() as u64));
        // The reassembly slot must exist before the first chunk can reach
        // a worker, or a fast completion would have nowhere to land.
        sh.board.open(id, k);
        for index in 0..k {
            let req = Request {
                id,
                submitted_at,
                priority,
                arrival_ns,
                deadline_ns,
                chunk: ChunkSpan { index, of: k },
                job: job.clone(),
            };
            // Admission is atomic per request: only the first chunk can be
            // rejected for a full lane (non-blocking submits); once it is
            // in, the rest park on the lane until the scheduler drains it.
            let sent = if blocking || index > 0 {
                sh.lanes.send(lane, req).map_err(|_| SubmitError::Closed)
            } else {
                match sh.lanes.try_send(lane, req) {
                    Ok(()) => Ok(()),
                    Err(fnr_par::mpmc::TrySendError::Full(_)) => Err(SubmitError::Rejected),
                    Err(fnr_par::mpmc::TrySendError::Closed(_)) => Err(SubmitError::Closed),
                }
            };
            if let Err(e) = sent {
                if index == 0 {
                    sh.board.abandon(id);
                    sh.rejected[lane].fetch_add(k as usize, Ordering::Relaxed);
                } else {
                    // Admission closed mid-request (drain race): the sent
                    // chunks terminate through the pipeline; the remainder
                    // count as rejected and the waiter observes Closed.
                    sh.rejected[lane].fetch_add((k - index) as usize, Ordering::Relaxed);
                }
                return Err(e);
            }
        }
        Ok(id)
    }

    /// Admits `job` at [`Priority::Standard`] with no deadline, parking
    /// while its lane is full (backpressure). Returns the monotone
    /// request id.
    pub fn submit(&self, job: Workload) -> Result<u64, SubmitError> {
        self.admit(job, Priority::Standard, None, true)
    }

    /// Admits `job` with an explicit traffic class and optional relative
    /// deadline (measured from admission; service must *start* before it
    /// or the scheduler sheds the request). Parks while the class's lane
    /// is full.
    pub fn submit_with(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<u64, SubmitError> {
        self.admit(job, priority, deadline, true)
    }

    /// Admits `job` at [`Priority::Standard`] without parking; a full
    /// lane rejects.
    pub fn try_submit(&self, job: Workload) -> Result<u64, SubmitError> {
        self.admit(job, Priority::Standard, None, false)
    }

    /// Non-parking [`Client::submit_with`].
    pub fn try_submit_with(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<u64, SubmitError> {
        self.admit(job, priority, deadline, false)
    }

    /// Parks until request `id` completes (closed-loop clients). `None`
    /// if it was shed, failed, or the server shut down without answering —
    /// use [`Client::wait_outcome`] to tell the cases apart.
    pub fn wait(&self, id: u64) -> Option<Response> {
        match self.shared.board.wait(id) {
            WaitOutcome::Answered(r) => Some(r),
            WaitOutcome::Shed | WaitOutcome::Failed(_) | WaitOutcome::Closed => None,
        }
    }

    /// Parks until request `id` completes and reports how it left the
    /// server: answered, shed by the deadline policy, failed under
    /// quarantine, or lost to shutdown.
    pub fn wait_outcome(&self, id: u64) -> WaitOutcome {
        self.shared.board.wait(id)
    }

    /// Parks until chunk `index` of request `id` is terminal — the
    /// streaming consumption path. Chunks resolve independently, so chunk
    /// 0 (which carries the payload header) is typically available long
    /// before the full render; consuming chunks `0..of` in order yields
    /// exactly the bytes [`Client::wait`] would return, incrementally. An
    /// out-of-range index resolves as [`ChunkOutcome::Closed`].
    pub fn wait_chunk(&self, id: u64, index: u32) -> ChunkOutcome {
        self.shared.board.wait_chunk(id, index)
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// All responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Aggregate metrics (including the response-set digest and per-lane
    /// served/shed/expired/failed counters).
    pub metrics: ServeMetrics,
}

/// A live serving pipeline: scheduler, supervised worker pool, and
/// completion board. Create with [`Server::start`], submit through
/// [`Server::client`] handles, and finish with [`Server::drain`] —
/// admission closes, in-flight work completes, and the final metrics
/// come back. Dropping an undrained server shuts it down and discards
/// the metrics.
pub struct Server {
    shared: Arc<ServerShared>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the pipeline threads (scheduler, `workers` workers, one
    /// supervisor) and returns the running server.
    ///
    /// # Panics
    ///
    /// Panics on a malformed [`SchedConfig`].
    pub fn start(cfg: &ServerConfig) -> Server {
        cfg.sched.validate();
        let lane_caps = cfg.sched.capacities(cfg.queue_capacity);
        // Lanes require capacity >= 1; zero-capacity lanes are gated at
        // the client and never reach the queue.
        let floored: Vec<usize> = lane_caps.iter().map(|&c| c.max(1)).collect();
        let workers = cfg.workers.max(1);
        let shared = Arc::new(ServerShared {
            epoch: Instant::now(),
            sched: cfg.sched.clone(),
            tables: cfg.tables.clone(),
            batcher_cfg: BatcherConfig { max_batch: cfg.max_batch, linger: cfg.linger },
            lanes: Lanes::bounded(&floored),
            lane_caps,
            // Batch hand-off is sized to keep workers busy without
            // unbounded buffering ahead of them.
            batches: Queue::bounded(workers * 2),
            board: Board::new(),
            next_id: AtomicU64::new(0),
            rejected: cfg.sched.lanes.iter().map(|_| AtomicUsize::new(0)).collect(),
            request_metrics: Mutex::new(Vec::new()),
            batch_metrics: Mutex::new(Vec::new()),
            shed_metrics: Mutex::new(Vec::new()),
            fail_metrics: Mutex::new(Vec::new()),
            degrade_metrics: Mutex::new(Vec::new()),
            served_batches: AtomicUsize::new(0),
            worker_restarts: AtomicUsize::new(0),
            retried: AtomicUsize::new(0),
            breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
            injector: cfg.injector,
            retry: cfg.retry,
            supervise: cfg.supervise,
            brownout_cfg: cfg.brownout,
            shutdown: AtomicBool::new(false),
            workers,
            chunks: cfg.chunks,
        });

        let scheduler = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&sh))
        };
        let (crash_tx, crash_rx) = mpsc::channel::<CrashReport>();
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                let tx = crash_tx.clone();
                std::thread::spawn(move || worker_loop(&sh, tx))
            })
            .collect();
        let supervisor = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&sh, crash_rx, crash_tx))
        };
        Server { shared, scheduler: Some(scheduler), workers: worker_handles, supervisor: Some(supervisor) }
    }

    /// A new submission handle. Handles share the server's id space and
    /// stay valid (returning [`SubmitError::Closed`] /
    /// [`WaitOutcome::Closed`]) after [`Server::drain`].
    pub fn client(&self) -> Client {
        Client { shared: Arc::clone(&self.shared) }
    }

    /// Graceful drain: closes admission, lets the scheduler flush what is
    /// queued (serving the unexpired, shedding the expired), waits for
    /// every in-flight batch — including quarantine re-executions — to
    /// terminate, and returns the final report. Late submits on surviving
    /// [`Client`] handles fail with [`SubmitError::Closed`]; late waits
    /// observe [`WaitOutcome::Closed`].
    pub fn drain(mut self) -> ServeReport {
        self.shutdown();
        let sh = &self.shared;
        let responses = sh.board.drain_sorted();
        let lane_acct: Vec<LaneAccounting> = sh
            .sched
            .lanes
            .iter()
            .zip(&sh.rejected)
            .map(|(l, r)| LaneAccounting {
                name: l.name.clone(),
                weight: l.weight,
                rejected: r.load(Ordering::Relaxed),
            })
            .collect();
        let robust = {
            let breaker = sh.breaker.lock().unwrap();
            RobustTotals {
                worker_restarts: sh.worker_restarts.load(Ordering::Relaxed),
                retried: sh.retried.load(Ordering::Relaxed),
                breaker_opened: breaker.opened(),
                breaker_half_open_probes: breaker.half_open_probes(),
            }
        };
        let metrics = ServeMetrics::aggregate(
            &std::mem::take(&mut *sh.request_metrics.lock().unwrap()),
            &std::mem::take(&mut *sh.batch_metrics.lock().unwrap()),
            &std::mem::take(&mut *sh.shed_metrics.lock().unwrap()),
            &std::mem::take(&mut *sh.fail_metrics.lock().unwrap()),
            &std::mem::take(&mut *sh.degrade_metrics.lock().unwrap()),
            &responses,
            &lane_acct,
            robust,
            sh.epoch.elapsed().as_nanos() as u64,
            sh.workers,
            fnr_par::current_num_threads(),
        );
        ServeReport { responses, metrics }
    }

    /// Joins every pipeline thread: scheduler first (it flushes the lanes
    /// and closes the batch queue), then the original workers, then the
    /// supervisor (which joins its respawns and fail-drains the batch
    /// queue if the pool went extinct). Idempotent.
    fn shutdown(&mut self) {
        self.shared.lanes.close();
        if let Some(h) = self.scheduler.take() {
            h.join().expect("scheduler thread panicked");
        }
        for h in self.workers.drain(..) {
            h.join().expect("worker thread panicked outside catch_unwind");
        }
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.supervisor.take() {
            h.join().expect("supervisor thread panicked");
        }
        self.shared.board.close();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (undrained) server must not leak parked threads.
        self.shutdown();
    }
}

/// Runs a server for the lifetime of `drive`: starts the pipeline, hands
/// `drive` a [`Client`], and [`Server::drain`]s when it returns (pending
/// unexpired requests are served; pending expired requests are shed).
///
/// # Panics
///
/// Re-raises a panic from the drive closure (after draining the server so
/// nothing leaks). Worker panics do **not** propagate: they resolve the
/// affected requests as [`WaitOutcome::Failed`] under quarantine. Panics
/// on a malformed [`SchedConfig`].
pub fn run<R: Send>(cfg: &ServerConfig, drive: impl FnOnce(&Client) -> R + Send) -> (R, ServeReport) {
    let server = Server::start(cfg);
    let client = server.client();
    // A panicking drive closure must still drain the pipeline, or its
    // threads would leak parked; catch, drain, rethrow.
    let result = catch_unwind(AssertUnwindSafe(|| drive(&client)));
    let report = server.drain();
    match result {
        Ok(r) => (r, report),
        Err(payload) => resume_unwind(payload),
    }
}

/// The scheduler role: drains the admission lanes through the
/// weighted-deficit [`LaneScheduler`] (multi-lane pop), sheds expired
/// requests, applies the brownout precision downgrade, coalesces the
/// served ones, and forwards flushed batches. Greedily re-steps after
/// every pop so bursts coalesce even when workers are idle.
fn scheduler_loop(shared: &ServerShared) {
    let mut sched = LaneScheduler::new(&shared.sched);
    let mut batcher = Batcher::new(shared.batcher_cfg);
    let mut brownout = Brownout::new(shared.brownout_cfg);
    // Total queue depth observed by the picker on its most recent pass —
    // the brownout's pressure signal, measured where it is free to read.
    let depth = Cell::new(0usize);
    let now_ns = || shared.epoch.elapsed().as_nanos() as u64;
    let pick = |sched: &mut LaneScheduler, ls: &mut [std::collections::VecDeque<Request>]| {
        depth.set(ls.iter().map(|l| l.len()).sum());
        sched.step(ls, now_ns())
    };
    // Applies one scheduling decision; returns a flushed batch if the
    // served request completed one.
    let apply = |step: SchedStep, batcher: &mut Batcher, brownout: &mut Brownout| -> Option<Batch> {
        match step {
            SchedStep::Serve { lane, mut req } => {
                if brownout.observe(depth.get()) && req.priority != Priority::Interactive {
                    if let Workload::Render(j) = &mut req.job {
                        if let Some(lower) = degrade_precision(j.precision) {
                            j.precision = lower;
                            shared
                                .degrade_metrics
                                .lock()
                                .unwrap()
                                .push(DegradeMetric { id: req.id, lane });
                        }
                    }
                }
                batcher.offer(req, Instant::now())
            }
            SchedStep::Shed { lane, req } => {
                brownout.observe(depth.get());
                shared.shed_metrics.lock().unwrap().push(ShedMetric {
                    id: req.id,
                    lane,
                    queue_ns: shared.epoch.elapsed().as_nanos() as u64 - req.arrival_ns,
                });
                shared.board.post_shed(req.id, req.chunk.index);
                None
            }
        }
    };
    loop {
        let step = match batcher.next_deadline() {
            None => match shared.lanes.recv_with(|ls| pick(&mut sched, ls)) {
                Some(s) => s,
                None => break,
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    for b in batcher.expire(now) {
                        if shared.batches.send(b).is_err() {
                            return; // queue torn down; nothing left to do
                        }
                    }
                    continue;
                }
                match shared.lanes.recv_with_timeout(deadline - now, |ls| pick(&mut sched, ls)) {
                    RecvTimeout::Item(s) => s,
                    RecvTimeout::TimedOut => continue,
                    RecvTimeout::Closed => break,
                }
            }
        };
        let mut flushed = Vec::new();
        if let Some(b) = apply(step, &mut batcher, &mut brownout) {
            flushed.push(b);
        }
        while let Some(more) = shared.lanes.try_recv_with(|ls| pick(&mut sched, ls)) {
            if let Some(b) = apply(more, &mut batcher, &mut brownout) {
                flushed.push(b);
            }
        }
        for b in flushed {
            if shared.batches.send(b).is_err() {
                return;
            }
        }
    }
    for b in batcher.drain() {
        if shared.batches.send(b).is_err() {
            return;
        }
    }
    shared.batches.close();
}

/// The worker role: executes batches until the queue closes. A panicking
/// batch retires this thread after shipping a [`CrashReport`] to the
/// supervisor, which bisects the batch and respawns a replacement.
pub(crate) fn worker_loop(shared: &Arc<ServerShared>, crash_tx: mpsc::Sender<CrashReport>) {
    while let Some(batch) = shared.batches.recv() {
        if let Err(report) = attempt_batch(shared, batch) {
            // The channel outlives us (the supervisor holds the receiver
            // and a template sender); a send can only fail during teardown
            // races, in which case the supervisor fail-drains anyway.
            let _ = crash_tx.send(report);
            return;
        }
    }
}

/// Executes one batch end-to-end: breaker gate, injected chaos, the real
/// work under `catch_unwind`, then metrics + completion posting. `Ok`
/// means every member terminated (answered or fast-failed); `Err` hands
/// the intact batch back for quarantine. Shared by workers and the
/// supervisor's bisection re-executions so both paths stay identical.
pub(crate) fn attempt_batch(shared: &ServerShared, batch: Batch) -> Result<(), CrashReport> {
    // Circuit-breaker gate: an open key fast-fails the whole batch
    // without executing (or crashing) anything.
    if shared.breaker.lock().unwrap().enabled() {
        let now = shared.now_ns();
        let allowed = shared.breaker.lock().unwrap().allow(&batch.key, now);
        if !allowed {
            fail_batch(shared, &batch, &format!("circuit open for key {}", batch.key));
            return Ok(());
        }
    }
    // Injected delay: slow the batch down by the largest member delay.
    // Timing-only — payload bytes cannot move.
    if let Some(inj) = &shared.injector {
        let delay = batch
            .requests
            .iter()
            .filter_map(|r| match inj.decide(&r.job) {
                Some(InjectedFault::Delay(d)) => Some(d),
                _ => None,
            })
            .max();
        if let Some(d) = delay {
            std::thread::sleep(Duration::from_nanos(d));
        }
    }
    let exec_start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(inj) = &shared.injector {
            if let Some(bad) = batch.requests.iter().find(|r| inj.poisons(&r.job)) {
                panic!("injected fault: request {} is poisoned", bad.id);
            }
        }
        execute_batch(&batch, &shared.tables)
    }));
    match result {
        Ok(responses) => {
            let service_ns = exec_start.elapsed().as_nanos() as u64;
            let end_ns = shared.now_ns();
            {
                let mut bm = shared.batch_metrics.lock().unwrap();
                bm.push(BatchMetric {
                    key: batch.key.clone(),
                    size: batch.requests.len(),
                    service_ns,
                    flush: batch.flush,
                });
            }
            {
                let mut rm = shared.request_metrics.lock().unwrap();
                for req in &batch.requests {
                    rm.push(RequestMetric {
                        id: req.id,
                        lane: shared.sched.lane_of(req.priority),
                        queue_ns: exec_start.duration_since(req.submitted_at).as_nanos() as u64,
                        service_ns,
                        batch_size: batch.requests.len(),
                        chunk: req.chunk.index,
                        chunk_of: req.chunk.of,
                        deadline_missed: req.deadline_ns.is_some_and(|d| end_ns >= d),
                    });
                }
            }
            shared.breaker.lock().unwrap().record_success(&batch.key);
            shared.served_batches.fetch_add(1, Ordering::Relaxed);
            shared.board.post_served(responses);
            Ok(())
        }
        Err(payload) => Err(CrashReport { batch, reason: panic_reason(payload) }),
    }
}

/// Terminates every member of `batch` as [`WaitOutcome::Failed`] with
/// `reason`, recording per-lane fail metrics. Waiters unblock immediately.
pub(crate) fn fail_batch(shared: &ServerShared, batch: &Batch, reason: &str) {
    let now = Instant::now();
    {
        let mut fm = shared.fail_metrics.lock().unwrap();
        for req in &batch.requests {
            fm.push(FailMetric {
                id: req.id,
                lane: shared.sched.lane_of(req.priority),
                queue_ns: now.duration_since(req.submitted_at).as_nanos() as u64,
            });
        }
    }
    for req in &batch.requests {
        shared.board.post_failed(req.id, req.chunk.index, reason.to_string());
    }
}

/// The per-scene NGP model, built once per process: it is a pure function
/// of the scene's fixed seed, so caching it cannot move response bytes —
/// it only takes hash-grid + MLP construction off the per-batch hot path.
fn scene_model(scene: crate::request::SceneKind) -> &'static NgpModel {
    use crate::request::SceneKind;
    static MODELS: std::sync::OnceLock<[NgpModel; 3]> = std::sync::OnceLock::new();
    let models = MODELS.get_or_init(|| {
        [SceneKind::Mic, SceneKind::Lego, SceneKind::Palace]
            .map(|s| NgpModel::new(HashGridConfig::small(), 16, s.model_seed()))
    });
    match scene {
        SceneKind::Mic => &models[0],
        SceneKind::Lego => &models[1],
        SceneKind::Palace => &models[2],
    }
}

/// One entry of the prepared-quantized-model cache: the lazily-built
/// prepared model plus its usage counters.
struct QuantEntry {
    prepared: OnceLock<PreparedQuantized>,
    /// Times the quantize+calibrate closure actually ran (1 after first
    /// use, forever — the invariant [`quantized_cache_stats`] exposes).
    builds: AtomicU64,
    /// Batches served through this entry.
    uses: AtomicU64,
}

/// Counters for one `(scene, precision)` entry of the prepared-model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantCacheStats {
    /// Times the model was quantized+calibrated (stays at 1 after the
    /// first batch — later batches perform zero quantize/calibrate work).
    pub builds: u64,
    /// Batches rendered through the cached model.
    pub uses: u64,
}

/// Key and map types of the prepared-quantized-model cache.
type QuantKey = (crate::request::SceneKind, Precision);
type QuantMap = Mutex<HashMap<QuantKey, Arc<QuantEntry>>>;

fn quant_cache() -> &'static QuantMap {
    static CACHE: std::sync::OnceLock<QuantMap> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide memoized [`PreparedQuantized`] for `(scene,
/// precision)`: quantize+calibrate runs exactly once per key (the first
/// batch pays it; every later batch is pure rendering). The prepared model
/// is a deterministic function of the scene's fixed-seed [`NgpModel`] and
/// the precision, so caching cannot move response bytes.
fn prepared_quantized(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> Arc<QuantEntry> {
    let entry = {
        let mut map = quant_cache().lock().unwrap();
        Arc::clone(map.entry((scene, precision)).or_insert_with(|| {
            Arc::new(QuantEntry {
                prepared: OnceLock::new(),
                builds: AtomicU64::new(0),
                uses: AtomicU64::new(0),
            })
        }))
    };
    // Build outside the map lock: a slow calibration for one key must not
    // serialize unrelated keys. OnceLock makes concurrent same-key callers
    // race to run the closure at most once.
    entry.prepared.get_or_init(|| {
        entry.builds.fetch_add(1, Ordering::Relaxed);
        scene_model(scene).prepare_quantized(precision)
    });
    entry
}

/// Usage counters of the prepared-quantized-model cache entry for
/// `(scene, precision)` — all zeros if no quantized batch has touched that
/// key yet. Test hook for the hot-path contract: after the first batch,
/// `builds` stays at 1 while `uses` keeps growing.
pub fn quantized_cache_stats(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> QuantCacheStats {
    let map = quant_cache().lock().unwrap();
    map.get(&(scene, precision)).map_or(QuantCacheStats::default(), |e| QuantCacheStats {
        builds: e.builds.load(Ordering::Relaxed),
        uses: e.uses.load(Ordering::Relaxed),
    })
}

/// Executes one coalesced batch. Render batches share one model (and for
/// quantized precisions, one quantization + calibration); table batches
/// run the generator once and share the bytes. Each render member renders
/// only its own row band — chunked members of different requests coalesce
/// under the same key, and every band is a bitwise slice of the member's
/// full frame, so reassembled payloads are byte-identical to unchunked
/// renders.
pub(crate) fn execute_batch(batch: &Batch, tables: &TableRegistry) -> Vec<ChunkResponse> {
    match &batch.key {
        BatchKey::Render(scene, precision) => {
            // (view, row0, rows) per member: the band is a pure function
            // of the job geometry and the member's chunk span.
            let members: Vec<(BatchView, usize, usize)> = batch
                .requests
                .iter()
                .map(|r| match &r.job {
                    Workload::Render(j) => {
                        let (row0, rows) = row_band(j.height, r.chunk.index, r.chunk.of);
                        let view = BatchView {
                            camera: j.camera(),
                            width: j.width,
                            height: j.height,
                            spp: j.spp,
                        };
                        (view, row0, rows)
                    }
                    Workload::Table(_) => unreachable!("table job under a render key"),
                })
                .collect();
            let images = match precision {
                RenderPrecision::Fp32 => fnr_par::par_map(&members, |(v, row0, rows)| {
                    render_reference_rows(scene.scene(), &v.camera, v.width, v.height, v.spp, *row0, *rows)
                }),
                RenderPrecision::Quantized(p) => {
                    let entry = prepared_quantized(*scene, *p);
                    entry.uses.fetch_add(1, Ordering::Relaxed);
                    let prepared = entry.prepared.get().expect("initialized by prepared_quantized");
                    fnr_par::par_map(&members, |(v, row0, rows)| prepared.render_rows(v, *row0, *rows))
                }
            };
            batch
                .requests
                .iter()
                .zip(&images)
                .map(|(r, img)| {
                    let full_h = match &r.job {
                        Workload::Render(j) => j.height,
                        Workload::Table(_) => unreachable!("table job under a render key"),
                    };
                    ChunkResponse { id: r.id, chunk: r.chunk, bytes: chunk_image_bytes(img, full_h, r.chunk) }
                })
                .collect()
        }
        BatchKey::Table(name) => {
            let generator = tables
                .resolve(name)
                .unwrap_or_else(|| panic!("unknown table generator `{name}`"));
            let bytes = generator();
            batch
                .requests
                .iter()
                .map(|r| ChunkResponse { id: r.id, chunk: r.chunk, bytes: bytes.clone() })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, SceneKind};

    fn tiny_render(seed: u64) -> Workload {
        Workload::Render(RenderJob {
            scene: SceneKind::Mic,
            precision: RenderPrecision::Fp32,
            width: 4,
            height: 4,
            spp: 2,
            camera_seed: seed,
        })
    }

    #[test]
    fn serves_render_and_table_requests() {
        let mut cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        cfg.tables.register("hello", Arc::new(|| b"hello table".to_vec()));
        let (ids, report) = run(&cfg, |client| {
            let a = client.submit(tiny_render(1)).unwrap();
            let b = client.submit_with(tiny_render(2), Priority::Interactive, None).unwrap();
            let t = client.submit_with(Workload::Table("hello".into()), Priority::Batch, None).unwrap();
            let resp = client.wait(t).expect("table answered");
            assert_eq!(resp.bytes, b"hello table");
            (a, b, t)
        });
        assert_eq!(ids, (0, 1, 2), "ids are monotone from zero");
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.metrics.requests, 3);
        assert!(report.metrics.batches >= 1 && report.metrics.batches <= 3);
        // Per-lane accounting: one request per class, none shed.
        let served: Vec<usize> = report.metrics.lanes.iter().map(|l| l.served).collect();
        assert_eq!(served, vec![1, 1, 1]);
        assert_eq!(report.metrics.shed, 0);
        // Render payload header: 4×4.
        assert_eq!(&report.responses[0].bytes[0..4], &4u32.to_le_bytes());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let cfg = ServerConfig { queue_capacity: 0, ..ServerConfig::default() };
        let (result, report) = run(&cfg, |client| {
            let r = client.submit(tiny_render(0));
            let t = client.try_submit(tiny_render(1));
            (r, t)
        });
        assert_eq!(result, (Err(SubmitError::Rejected), Err(SubmitError::Rejected)));
        assert!(report.responses.is_empty());
        assert_eq!(report.metrics.rejected, 2);
        assert_eq!(report.metrics.requests, 0);
    }

    #[test]
    fn zero_capacity_lane_rejects_only_its_class() {
        // An explicit capacity-0 batch lane sheds that class at admission
        // while the other lanes keep serving.
        let mut sched = SchedConfig::priority_lanes();
        sched.lanes[2].capacity = Some(0);
        let cfg = ServerConfig { sched, ..ServerConfig::default() };
        let (results, report) = run(&cfg, |client| {
            let ok = client.submit_with(tiny_render(0), Priority::Interactive, None);
            let no = client.submit_with(tiny_render(1), Priority::Batch, None);
            (ok, no)
        });
        assert!(results.0.is_ok());
        assert_eq!(results.1, Err(SubmitError::Rejected));
        assert_eq!(report.responses.len(), 1);
        assert_eq!(report.metrics.lanes[2].rejected, 1);
        assert_eq!(report.metrics.lanes[0].rejected, 0);
    }

    #[test]
    fn worker_panic_is_quarantined_not_fatal() {
        // The supervision contract: an organically panicking request (an
        // unknown table generator) resolves as Failed with the panic
        // message, the worker is respawned, and the server keeps serving.
        let cfg = ServerConfig::default(); // empty registry: unknown table panics
        let (outcomes, report) = run(&cfg, |client| {
            let bad = client.submit(Workload::Table("no-such-generator".into())).unwrap();
            let bad_outcome = client.wait_outcome(bad);
            // The pool survived the crash: later requests still serve.
            let good = client.submit(tiny_render(1)).unwrap();
            let good_outcome = client.wait_outcome(good);
            (bad_outcome, good_outcome)
        });
        match &outcomes.0 {
            WaitOutcome::Failed(reason) => {
                assert!(reason.contains("no-such-generator"), "panic message surfaced: {reason}")
            }
            other => panic!("poisoned request must fail, got {other:?}"),
        }
        assert!(matches!(outcomes.1, WaitOutcome::Answered(_)), "server survived the panic");
        assert_eq!(report.metrics.failed, 1);
        assert_eq!(report.metrics.requests, 1);
        assert!(report.metrics.worker_restarts >= 1, "crashed worker was respawned");
    }

    #[test]
    fn quantize_and_calibrate_run_once_per_scene_precision() {
        // `builds` is a per-key process-wide invariant: whichever test (or
        // concurrent batch) touches the key first builds it, and it must
        // never be built again.
        let key_scene = SceneKind::Palace;
        let key_precision = Precision::Int16;
        let job = |seed| {
            Workload::Render(RenderJob {
                scene: key_scene,
                precision: RenderPrecision::Quantized(key_precision),
                width: 4,
                height: 4,
                spp: 2,
                camera_seed: seed,
            })
        };
        let cfg = ServerConfig::default();
        let (bytes, _report) = run(&cfg, |client| {
            // Sequential submit+wait pairs force two separate batches.
            let a = client.submit(job(9)).unwrap();
            let first = client.wait(a).expect("answered").bytes;
            let b = client.submit(job(9)).unwrap();
            let second = client.wait(b).expect("answered").bytes;
            (first, second)
        });
        assert_eq!(bytes.0, bytes.1, "cached prepared model must not move response bytes");
        let stats = quantized_cache_stats(key_scene, key_precision);
        assert_eq!(stats.builds, 1, "quantize+calibrate must run exactly once for the key");
        assert!(stats.uses >= 2, "both batches served through the cache: {stats:?}");
    }

    #[test]
    fn responses_survive_shutdown_drain() {
        // Submit with a huge linger and no waiting: shutdown must flush the
        // batcher (Drain) and still answer everything.
        let cfg = ServerConfig {
            linger: Duration::from_secs(60),
            max_batch: 1000,
            ..ServerConfig::default()
        };
        let (n, report) = run(&cfg, |client| {
            for i in 0..10 {
                client.submit(tiny_render(i)).unwrap();
            }
            10
        });
        assert_eq!(n, 10);
        assert_eq!(report.responses.len(), 10);
        assert!(report.metrics.flushed_drain >= 1, "drain flush recorded");
        let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>(), "sorted by id");
    }

    #[test]
    fn deadline_zero_sheds_instead_of_rendering() {
        // A zero deadline is expired the instant it can be dequeued: the
        // scheduler must shed it (WaitOutcome::Shed), never render it.
        let cfg = ServerConfig::default();
        let (outcomes, report) = run(&cfg, |client| {
            (0..4)
                .map(|i| {
                    let id = client
                        .submit_with(tiny_render(i), Priority::Interactive, Some(Duration::ZERO))
                        .unwrap();
                    client.wait_outcome(id)
                })
                .collect::<Vec<_>>()
        });
        assert!(outcomes.iter().all(|o| *o == WaitOutcome::Shed), "all shed: {outcomes:?}");
        assert!(report.responses.is_empty(), "a shed request is never rendered");
        assert_eq!(report.metrics.shed, 4);
        assert_eq!(report.metrics.lanes[0].shed, 4);
        assert_eq!(report.metrics.requests, 0);
    }

    #[test]
    fn chunked_live_renders_reassemble_byte_identically() {
        let taller = |seed| {
            Workload::Render(RenderJob {
                scene: SceneKind::Lego,
                precision: RenderPrecision::Fp32,
                width: 4,
                height: 5,
                spp: 2,
                camera_seed: seed,
            })
        };
        let serve = |chunks: usize| {
            let mut cfg = ServerConfig { chunks, ..ServerConfig::default() };
            cfg.tables.register("t", Arc::new(|| b"table bytes".to_vec()));
            run(&cfg, |client| {
                for i in 0..4 {
                    client.submit(taller(i)).unwrap();
                }
                client.submit(Workload::Table("t".into())).unwrap();
            })
            .1
        };
        let whole = serve(1);
        let chunked = serve(3);
        assert_eq!(whole.responses.len(), 5);
        assert_eq!(
            whole.responses, chunked.responses,
            "reassembled chunked payloads must be byte-identical to unchunked renders"
        );
        assert_eq!(whole.metrics.digest, chunked.metrics.digest);
        assert_eq!(chunked.metrics.requests, 5);
        // 4 renders × 3 chunks + 1 table × 1 chunk.
        assert_eq!(chunked.metrics.chunks_served, 13);
        assert_eq!(whole.metrics.chunks_served, 5);
    }

    #[test]
    fn wait_chunk_streams_row_bands_in_order() {
        let cfg = ServerConfig { chunks: 2, ..ServerConfig::default() };
        let ((id, outcome), _report) = run(&cfg, |client| {
            let id = client.submit(tiny_render(5)).unwrap();
            let outcome = client.wait_outcome(id);
            (id, outcome)
        });
        let WaitOutcome::Answered(resp) = outcome else {
            panic!("chunked render must answer");
        };
        // Re-run to read the chunks while the server is live.
        let (chunks, _report) = run(&cfg, |client| {
            let id2 = client.submit(tiny_render(5)).unwrap();
            let c0 = client.wait_chunk(id2, 0);
            let c1 = client.wait_chunk(id2, 1);
            (c0, c1)
        });
        let (ChunkOutcome::Served(c0), ChunkOutcome::Served(c1)) = (&chunks.0, &chunks.1) else {
            panic!("both chunks must serve: {chunks:?}");
        };
        let mut concat = c0.clone();
        concat.extend_from_slice(c1);
        assert_eq!(concat, resp.bytes, "streamed chunks concatenate to the whole payload");
        assert_eq!(&c0[0..4], &4u32.to_le_bytes(), "chunk 0 carries the width header");
        assert_eq!(id, 0);
    }

    #[test]
    fn generous_deadline_serves_normally() {
        let cfg = ServerConfig::default();
        let (outcome, report) = run(&cfg, |client| {
            let id = client
                .submit_with(tiny_render(3), Priority::Interactive, Some(Duration::from_secs(300)))
                .unwrap();
            client.wait_outcome(id)
        });
        assert!(matches!(outcome, WaitOutcome::Answered(_)), "unexpired request served");
        assert_eq!(report.metrics.shed, 0);
        assert_eq!(report.metrics.lanes[0].served, 1);
    }
}
