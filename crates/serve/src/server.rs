//! The serving runtime: multi-lane admission → scheduler → batcher →
//! worker pool → completion board, with panic propagation and metrics.
//!
//! Serving concurrency (client / scheduler / worker threads) is decoupled
//! from data-parallel width: the roles run on dedicated `std::thread`s,
//! while the *work* inside a batch (pixel rows, batch views) fans out over
//! `fnr_par`'s pool and therefore honours `FNR_THREADS`. Response bytes
//! are a pure function of each request, so the response set is
//! byte-identical at any width, worker count, or batching outcome —
//! timing only moves metrics. With deadlines disabled (the default)
//! scheduling can only *reorder* requests, never drop them, so any lane
//! policy — including the degenerate single-lane config — reproduces the
//! FIFO server's response-set digest exactly.
//!
//! Admission is no longer one FIFO queue: requests enter the per-class
//! bounded lane of [`fnr_par::mpmc::Lanes`] (backpressure per lane), and
//! the scheduler thread drains them through [`LaneScheduler`] — weighted
//! deficit across lanes, per-key round robin within a lane, and
//! shed-on-dequeue for requests whose deadline passed while queued.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use fnr_nerf::hashgrid::HashGridConfig;
use fnr_nerf::render::{render_reference_batch, BatchView, NgpModel, PreparedQuantized};
use fnr_par::mpmc::{Lanes, Queue, RecvTimeout};
use fnr_tensor::Precision;

use crate::batch::{Batch, Batcher, BatcherConfig};
use crate::metrics::{BatchMetric, LaneAccounting, RequestMetric, ServeMetrics, ShedMetric};
use crate::request::{image_bytes, BatchKey, RenderPrecision, Request, Response, Workload};
use crate::sched::{LaneScheduler, Priority, SchedConfig, SchedStep};

/// A named table generator the server can execute: `name → payload bytes`.
pub type TableFn = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// Registry of table generators servable through [`Workload::Table`].
#[derive(Default, Clone)]
pub struct TableRegistry {
    entries: Vec<(String, TableFn)>,
}

impl TableRegistry {
    /// An empty registry (render-only server).
    pub fn new() -> Self {
        TableRegistry::default()
    }

    /// Registers `name`; later registrations shadow earlier ones.
    pub fn register(&mut self, name: impl Into<String>, f: TableFn) {
        self.entries.insert(0, (name.into(), f));
    }

    /// Looks a generator up by name.
    pub fn resolve(&self, name: &str) -> Option<&TableFn> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, most recently registered first.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Serving-runtime knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Default per-lane admission capacity (lanes may override via
    /// [`SchedConfig`]). **Zero rejects every request** whose lane does
    /// not override it (the hard-overload posture); blocking submits
    /// otherwise park on a full lane (backpressure).
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Flush a batch at this many members.
    pub max_batch: usize,
    /// Flush an undersized batch once its oldest member waited this long.
    pub linger: Duration,
    /// The scheduling policy: lanes, weights, class mapping.
    pub sched: SchedConfig,
    /// Table generators servable through [`Workload::Table`].
    pub tables: TableRegistry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            workers: 2,
            max_batch: 8,
            linger: Duration::from_millis(2),
            sched: SchedConfig::priority_lanes(),
            tables: TableRegistry::new(),
        }
    }
}

/// Why a submit was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The lane is at capacity (non-blocking submit) or has capacity zero.
    Rejected,
    /// The server is shutting down (or a worker died).
    Closed,
}

/// How a request left the server, as seen by its submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The request was rendered; here is the payload.
    Answered(Response),
    /// The request's deadline passed while it queued: the scheduler shed
    /// it without rendering.
    Shed,
    /// The server shut down (or a worker died) before answering.
    Closed,
}

/// What the board parks for a finished request.
#[derive(Debug, Clone)]
enum Completion {
    Answered(Response),
    Shed,
}

/// Completion board: outcomes parked until their submitter collects them.
struct Board {
    state: Mutex<BoardState>,
    ready: Condvar,
}

struct BoardState {
    done: HashMap<u64, Completion>,
    closed: bool,
}

impl Board {
    fn new() -> Self {
        Board { state: Mutex::new(BoardState { done: HashMap::new(), closed: false }), ready: Condvar::new() }
    }

    fn post(&self, responses: &[Response]) {
        let mut st = self.state.lock().unwrap();
        for r in responses {
            st.done.insert(r.id, Completion::Answered(r.clone()));
        }
        drop(st);
        self.ready.notify_all();
    }

    fn post_shed(&self, id: u64) {
        self.state.lock().unwrap().done.insert(id, Completion::Shed);
        self.ready.notify_all();
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    fn wait(&self, id: u64) -> WaitOutcome {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(c) = st.done.get(&id) {
                return match c {
                    Completion::Answered(r) => WaitOutcome::Answered(r.clone()),
                    Completion::Shed => WaitOutcome::Shed,
                };
            }
            if st.closed {
                return WaitOutcome::Closed;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn drain_sorted(&self) -> Vec<Response> {
        let mut st = self.state.lock().unwrap();
        let mut out: Vec<Response> = st
            .done
            .drain()
            .filter_map(|(_, c)| match c {
                Completion::Answered(r) => Some(r),
                Completion::Shed => None,
            })
            .collect();
        out.sort_unstable_by_key(|r| r.id);
        out
    }
}

/// The submission handle handed to the drive closure of [`run`]. `Sync`,
/// so closed-loop drivers can share it across client threads.
pub struct Client<'s> {
    lanes: Lanes<Request>,
    /// Resolved per-lane capacities; zero means hard-reject at admission.
    lane_caps: Vec<usize>,
    sched: SchedConfig,
    epoch: Instant,
    next_id: AtomicU64,
    rejected: Vec<AtomicUsize>,
    board: &'s Board,
}

impl Client<'_> {
    fn admit(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<u64, SubmitError> {
        let lane = self.sched.lane_of(priority);
        if self.lane_caps[lane] == 0 {
            self.rejected[lane].fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let arrival_ns = self.epoch.elapsed().as_nanos() as u64;
        let req = Request {
            id,
            submitted_at: Instant::now(),
            priority,
            arrival_ns,
            deadline_ns: deadline.map(|d| arrival_ns.saturating_add(d.as_nanos() as u64)),
            job,
        };
        let sent = if blocking {
            self.lanes.send(lane, req).map_err(|_| SubmitError::Closed)
        } else {
            match self.lanes.try_send(lane, req) {
                Ok(()) => Ok(()),
                Err(fnr_par::mpmc::TrySendError::Full(_)) => Err(SubmitError::Rejected),
                Err(fnr_par::mpmc::TrySendError::Closed(_)) => Err(SubmitError::Closed),
            }
        };
        match sent {
            Ok(()) => Ok(id),
            Err(e) => {
                self.rejected[lane].fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Admits `job` at [`Priority::Standard`] with no deadline, parking
    /// while its lane is full (backpressure). Returns the monotone
    /// request id.
    pub fn submit(&self, job: Workload) -> Result<u64, SubmitError> {
        self.admit(job, Priority::Standard, None, true)
    }

    /// Admits `job` with an explicit traffic class and optional relative
    /// deadline (measured from admission; service must *start* before it
    /// or the scheduler sheds the request). Parks while the class's lane
    /// is full.
    pub fn submit_with(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<u64, SubmitError> {
        self.admit(job, priority, deadline, true)
    }

    /// Admits `job` at [`Priority::Standard`] without parking; a full
    /// lane rejects.
    pub fn try_submit(&self, job: Workload) -> Result<u64, SubmitError> {
        self.admit(job, Priority::Standard, None, false)
    }

    /// Non-parking [`Client::submit_with`].
    pub fn try_submit_with(
        &self,
        job: Workload,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<u64, SubmitError> {
        self.admit(job, priority, deadline, false)
    }

    /// Parks until request `id` completes (closed-loop clients). `None`
    /// if it was shed or the server shut down without answering — use
    /// [`Client::wait_outcome`] to tell the two apart.
    pub fn wait(&self, id: u64) -> Option<Response> {
        match self.board.wait(id) {
            WaitOutcome::Answered(r) => Some(r),
            WaitOutcome::Shed | WaitOutcome::Closed => None,
        }
    }

    /// Parks until request `id` completes and reports how it left the
    /// server: answered, shed by the deadline policy, or lost to
    /// shutdown.
    pub fn wait_outcome(&self, id: u64) -> WaitOutcome {
        self.board.wait(id)
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// All responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Aggregate metrics (including the response-set digest and per-lane
    /// served/shed/expired counters).
    pub metrics: ServeMetrics,
}

/// Runs a server for the lifetime of `drive`: spawns the scheduler and
/// worker threads, hands `drive` a [`Client`], and shuts the pipeline
/// down when it returns (pending unexpired requests are drained and
/// served; pending expired requests are shed).
///
/// # Panics
///
/// Re-raises any panic from a worker (a poisoned batch takes the run
/// down rather than silently losing requests). Panics on a malformed
/// [`SchedConfig`].
pub fn run<R: Send>(cfg: &ServerConfig, drive: impl FnOnce(&Client) -> R + Send) -> (R, ServeReport) {
    cfg.sched.validate();
    let start = Instant::now();
    let lane_caps = cfg.sched.capacities(cfg.queue_capacity);
    // Lanes require capacity >= 1; zero-capacity lanes are gated at the
    // client and never reach the queue.
    let floored: Vec<usize> = lane_caps.iter().map(|&c| c.max(1)).collect();
    let request_lanes: Lanes<Request> = Lanes::bounded(&floored);
    // Batch hand-off is sized to keep workers busy without unbounded
    // buffering ahead of them.
    let batch_queue: Queue<Batch> = Queue::bounded(cfg.workers.max(1) * 2);
    let board = Board::new();
    let request_metrics: Mutex<Vec<RequestMetric>> = Mutex::new(Vec::new());
    let batch_metrics: Mutex<Vec<BatchMetric>> = Mutex::new(Vec::new());
    let shed_metrics: Mutex<Vec<ShedMetric>> = Mutex::new(Vec::new());
    let worker_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let client = Client {
        lanes: request_lanes.clone(),
        lane_caps,
        sched: cfg.sched.clone(),
        epoch: start,
        next_id: AtomicU64::new(0),
        rejected: cfg.sched.lanes.iter().map(|_| AtomicUsize::new(0)).collect(),
        board: &board,
    };

    let drive_result = std::thread::scope(|s| {
        let batcher_cfg = BatcherConfig { max_batch: cfg.max_batch, linger: cfg.linger };
        {
            let lanes = request_lanes.clone();
            let batches = batch_queue.clone();
            let sched_cfg = cfg.sched.clone();
            let board = &board;
            let sheds = &shed_metrics;
            s.spawn(move || {
                scheduler_loop(&sched_cfg, batcher_cfg, start, &lanes, &batches, board, sheds)
            });
        }
        for _ in 0..cfg.workers.max(1) {
            let lanes = request_lanes.clone();
            let batches = batch_queue.clone();
            let board = &board;
            let req_m = &request_metrics;
            let batch_m = &batch_metrics;
            let panic_slot = &worker_panic;
            let tables = &cfg.tables;
            let sched_cfg = &cfg.sched;
            s.spawn(move || {
                worker_loop(start, sched_cfg, &lanes, &batches, tables, board, req_m, batch_m, panic_slot);
            });
        }
        // A panicking drive closure must still close the admission lanes,
        // or scope would join scheduler/workers parked forever in recv();
        // catch, shut down, rethrow below.
        let r = catch_unwind(AssertUnwindSafe(|| drive(&client)));
        // Shutdown: no more admissions; the scheduler drains what is
        // queued (serving the unexpired, shedding the expired) and closes
        // the batch queue; workers drain that and exit.
        request_lanes.close();
        r
    });
    let drive_result = match drive_result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    };

    if let Some(payload) = worker_panic.into_inner().unwrap() {
        resume_unwind(payload);
    }

    let responses = board.drain_sorted();
    let lane_acct: Vec<LaneAccounting> = cfg
        .sched
        .lanes
        .iter()
        .zip(&client.rejected)
        .map(|(l, r)| LaneAccounting {
            name: l.name.clone(),
            weight: l.weight,
            rejected: r.load(Ordering::Relaxed),
        })
        .collect();
    let metrics = ServeMetrics::aggregate(
        &request_metrics.into_inner().unwrap(),
        &batch_metrics.into_inner().unwrap(),
        &shed_metrics.into_inner().unwrap(),
        &responses,
        &lane_acct,
        start.elapsed().as_nanos() as u64,
        cfg.workers.max(1),
        fnr_par::current_num_threads(),
    );
    (drive_result, ServeReport { responses, metrics })
}

/// The scheduler role: drains the admission lanes through the
/// weighted-deficit [`LaneScheduler`] (multi-lane pop), sheds expired
/// requests, coalesces the served ones, and forwards flushed batches.
/// Greedily re-steps after every pop so bursts coalesce even when workers
/// are idle.
fn scheduler_loop(
    sched_cfg: &SchedConfig,
    batcher_cfg: BatcherConfig,
    epoch: Instant,
    lanes: &Lanes<Request>,
    batches: &Queue<Batch>,
    board: &Board,
    shed_metrics: &Mutex<Vec<ShedMetric>>,
) {
    let mut sched = LaneScheduler::new(sched_cfg);
    let mut batcher = Batcher::new(batcher_cfg);
    let now_ns = || epoch.elapsed().as_nanos() as u64;
    // Applies one scheduling decision; returns a flushed batch if the
    // served request completed one.
    let apply = |step: SchedStep, batcher: &mut Batcher| -> Option<Batch> {
        match step {
            SchedStep::Serve { req, .. } => batcher.offer(req, Instant::now()),
            SchedStep::Shed { lane, req } => {
                shed_metrics.lock().unwrap().push(ShedMetric {
                    id: req.id,
                    lane,
                    queue_ns: epoch.elapsed().as_nanos() as u64 - req.arrival_ns,
                });
                board.post_shed(req.id);
                None
            }
        }
    };
    loop {
        let step = match batcher.next_deadline() {
            None => match lanes.recv_with(|ls| sched.step(ls, now_ns())) {
                Some(s) => s,
                None => break,
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    for b in batcher.expire(now) {
                        if batches.send(b).is_err() {
                            return; // workers died; nothing left to do
                        }
                    }
                    continue;
                }
                match lanes.recv_with_timeout(deadline - now, |ls| sched.step(ls, now_ns())) {
                    RecvTimeout::Item(s) => s,
                    RecvTimeout::TimedOut => continue,
                    RecvTimeout::Closed => break,
                }
            }
        };
        let mut flushed = Vec::new();
        if let Some(b) = apply(step, &mut batcher) {
            flushed.push(b);
        }
        while let Some(more) = lanes.try_recv_with(|ls| sched.step(ls, now_ns())) {
            if let Some(b) = apply(more, &mut batcher) {
                flushed.push(b);
            }
        }
        for b in flushed {
            if batches.send(b).is_err() {
                return;
            }
        }
    }
    for b in batcher.drain() {
        if batches.send(b).is_err() {
            return;
        }
    }
    batches.close();
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    epoch: Instant,
    sched_cfg: &SchedConfig,
    lanes: &Lanes<Request>,
    batches: &Queue<Batch>,
    tables: &TableRegistry,
    board: &Board,
    request_metrics: &Mutex<Vec<RequestMetric>>,
    batch_metrics: &Mutex<Vec<BatchMetric>>,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) {
    while let Some(batch) = batches.recv() {
        let exec_start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| execute_batch(&batch, tables))) {
            Ok(responses) => {
                let service_ns = exec_start.elapsed().as_nanos() as u64;
                let end_ns = epoch.elapsed().as_nanos() as u64;
                {
                    let mut bm = batch_metrics.lock().unwrap();
                    bm.push(BatchMetric {
                        key: batch.key.clone(),
                        size: batch.requests.len(),
                        service_ns,
                        flush: batch.flush,
                    });
                }
                {
                    let mut rm = request_metrics.lock().unwrap();
                    for req in &batch.requests {
                        rm.push(RequestMetric {
                            id: req.id,
                            lane: sched_cfg.lane_of(req.priority),
                            queue_ns: exec_start.duration_since(req.submitted_at).as_nanos() as u64,
                            service_ns,
                            batch_size: batch.requests.len(),
                            deadline_missed: req.deadline_ns.is_some_and(|d| end_ns >= d),
                        });
                    }
                }
                board.post(&responses);
            }
            Err(payload) => {
                // First panic wins; unblock every parked thread so the run
                // unwinds instead of deadlocking, then rethrow in `run`.
                panic_slot.lock().unwrap().get_or_insert(payload);
                lanes.close();
                batches.close();
                board.close();
                return;
            }
        }
    }
}

/// The per-scene NGP model, built once per process: it is a pure function
/// of the scene's fixed seed, so caching it cannot move response bytes —
/// it only takes hash-grid + MLP construction off the per-batch hot path.
fn scene_model(scene: crate::request::SceneKind) -> &'static NgpModel {
    use crate::request::SceneKind;
    static MODELS: std::sync::OnceLock<[NgpModel; 3]> = std::sync::OnceLock::new();
    let models = MODELS.get_or_init(|| {
        [SceneKind::Mic, SceneKind::Lego, SceneKind::Palace]
            .map(|s| NgpModel::new(HashGridConfig::small(), 16, s.model_seed()))
    });
    match scene {
        SceneKind::Mic => &models[0],
        SceneKind::Lego => &models[1],
        SceneKind::Palace => &models[2],
    }
}

/// One entry of the prepared-quantized-model cache: the lazily-built
/// prepared model plus its usage counters.
struct QuantEntry {
    prepared: OnceLock<PreparedQuantized>,
    /// Times the quantize+calibrate closure actually ran (1 after first
    /// use, forever — the invariant [`quantized_cache_stats`] exposes).
    builds: AtomicU64,
    /// Batches served through this entry.
    uses: AtomicU64,
}

/// Counters for one `(scene, precision)` entry of the prepared-model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantCacheStats {
    /// Times the model was quantized+calibrated (stays at 1 after the
    /// first batch — later batches perform zero quantize/calibrate work).
    pub builds: u64,
    /// Batches rendered through the cached model.
    pub uses: u64,
}

/// Key and map types of the prepared-quantized-model cache.
type QuantKey = (crate::request::SceneKind, Precision);
type QuantMap = Mutex<HashMap<QuantKey, Arc<QuantEntry>>>;

fn quant_cache() -> &'static QuantMap {
    static CACHE: std::sync::OnceLock<QuantMap> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide memoized [`PreparedQuantized`] for `(scene,
/// precision)`: quantize+calibrate runs exactly once per key (the first
/// batch pays it; every later batch is pure rendering). The prepared model
/// is a deterministic function of the scene's fixed-seed [`NgpModel`] and
/// the precision, so caching cannot move response bytes.
fn prepared_quantized(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> Arc<QuantEntry> {
    let entry = {
        let mut map = quant_cache().lock().unwrap();
        Arc::clone(map.entry((scene, precision)).or_insert_with(|| {
            Arc::new(QuantEntry {
                prepared: OnceLock::new(),
                builds: AtomicU64::new(0),
                uses: AtomicU64::new(0),
            })
        }))
    };
    // Build outside the map lock: a slow calibration for one key must not
    // serialize unrelated keys. OnceLock makes concurrent same-key callers
    // race to run the closure at most once.
    entry.prepared.get_or_init(|| {
        entry.builds.fetch_add(1, Ordering::Relaxed);
        scene_model(scene).prepare_quantized(precision)
    });
    entry
}

/// Usage counters of the prepared-quantized-model cache entry for
/// `(scene, precision)` — all zeros if no quantized batch has touched that
/// key yet. Test hook for the hot-path contract: after the first batch,
/// `builds` stays at 1 while `uses` keeps growing.
pub fn quantized_cache_stats(
    scene: crate::request::SceneKind,
    precision: Precision,
) -> QuantCacheStats {
    let map = quant_cache().lock().unwrap();
    map.get(&(scene, precision)).map_or(QuantCacheStats::default(), |e| QuantCacheStats {
        builds: e.builds.load(Ordering::Relaxed),
        uses: e.uses.load(Ordering::Relaxed),
    })
}

/// Executes one coalesced batch. Render batches share one model (and for
/// quantized precisions, one quantization + calibration); table batches
/// run the generator once and share the bytes.
pub(crate) fn execute_batch(batch: &Batch, tables: &TableRegistry) -> Vec<Response> {
    match &batch.key {
        BatchKey::Render(scene, precision) => {
            let views: Vec<BatchView> = batch
                .requests
                .iter()
                .map(|r| match &r.job {
                    Workload::Render(j) => BatchView {
                        camera: j.camera(),
                        width: j.width,
                        height: j.height,
                        spp: j.spp,
                    },
                    Workload::Table(_) => unreachable!("table job under a render key"),
                })
                .collect();
            let images = match precision {
                RenderPrecision::Fp32 => render_reference_batch(scene.scene(), &views),
                RenderPrecision::Quantized(p) => {
                    let entry = prepared_quantized(*scene, *p);
                    entry.uses.fetch_add(1, Ordering::Relaxed);
                    entry.prepared.get().expect("initialized by prepared_quantized").render_batch(&views)
                }
            };
            batch
                .requests
                .iter()
                .zip(&images)
                .map(|(r, img)| Response { id: r.id, bytes: image_bytes(img) })
                .collect()
        }
        BatchKey::Table(name) => {
            let generator = tables
                .resolve(name)
                .unwrap_or_else(|| panic!("unknown table generator `{name}`"));
            let bytes = generator();
            batch.requests.iter().map(|r| Response { id: r.id, bytes: bytes.clone() }).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, SceneKind};

    fn tiny_render(seed: u64) -> Workload {
        Workload::Render(RenderJob {
            scene: SceneKind::Mic,
            precision: RenderPrecision::Fp32,
            width: 4,
            height: 4,
            spp: 2,
            camera_seed: seed,
        })
    }

    #[test]
    fn serves_render_and_table_requests() {
        let mut cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        cfg.tables.register("hello", Arc::new(|| b"hello table".to_vec()));
        let (ids, report) = run(&cfg, |client| {
            let a = client.submit(tiny_render(1)).unwrap();
            let b = client.submit_with(tiny_render(2), Priority::Interactive, None).unwrap();
            let t = client.submit_with(Workload::Table("hello".into()), Priority::Batch, None).unwrap();
            let resp = client.wait(t).expect("table answered");
            assert_eq!(resp.bytes, b"hello table");
            (a, b, t)
        });
        assert_eq!(ids, (0, 1, 2), "ids are monotone from zero");
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.metrics.requests, 3);
        assert!(report.metrics.batches >= 1 && report.metrics.batches <= 3);
        // Per-lane accounting: one request per class, none shed.
        let served: Vec<usize> = report.metrics.lanes.iter().map(|l| l.served).collect();
        assert_eq!(served, vec![1, 1, 1]);
        assert_eq!(report.metrics.shed, 0);
        // Render payload header: 4×4.
        assert_eq!(&report.responses[0].bytes[0..4], &4u32.to_le_bytes());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let cfg = ServerConfig { queue_capacity: 0, ..ServerConfig::default() };
        let (result, report) = run(&cfg, |client| {
            let r = client.submit(tiny_render(0));
            let t = client.try_submit(tiny_render(1));
            (r, t)
        });
        assert_eq!(result, (Err(SubmitError::Rejected), Err(SubmitError::Rejected)));
        assert!(report.responses.is_empty());
        assert_eq!(report.metrics.rejected, 2);
        assert_eq!(report.metrics.requests, 0);
    }

    #[test]
    fn zero_capacity_lane_rejects_only_its_class() {
        // An explicit capacity-0 batch lane sheds that class at admission
        // while the other lanes keep serving.
        let mut sched = SchedConfig::priority_lanes();
        sched.lanes[2].capacity = Some(0);
        let cfg = ServerConfig { sched, ..ServerConfig::default() };
        let (results, report) = run(&cfg, |client| {
            let ok = client.submit_with(tiny_render(0), Priority::Interactive, None);
            let no = client.submit_with(tiny_render(1), Priority::Batch, None);
            (ok, no)
        });
        assert!(results.0.is_ok());
        assert_eq!(results.1, Err(SubmitError::Rejected));
        assert_eq!(report.responses.len(), 1);
        assert_eq!(report.metrics.lanes[2].rejected, 1);
        assert_eq!(report.metrics.lanes[0].rejected, 0);
    }

    #[test]
    fn worker_panic_propagates_and_unblocks_waiters() {
        let cfg = ServerConfig::default(); // empty registry: unknown table panics
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run(&cfg, |client| {
                let id = client.submit(Workload::Table("no-such-generator".into())).unwrap();
                // The waiter must unblock (Closed), not deadlock, before
                // the panic resurfaces from `run`.
                assert_eq!(
                    client.wait_outcome(id),
                    WaitOutcome::Closed,
                    "waiter unblocked by worker failure"
                );
            })
        }));
        let payload = outcome.expect_err("worker panic must cross run()");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("no-such-generator"), "panic message surfaced: {msg}");
    }

    #[test]
    fn quantize_and_calibrate_run_once_per_scene_precision() {
        // `builds` is a per-key process-wide invariant: whichever test (or
        // concurrent batch) touches the key first builds it, and it must
        // never be built again.
        let key_scene = SceneKind::Palace;
        let key_precision = Precision::Int16;
        let job = |seed| {
            Workload::Render(RenderJob {
                scene: key_scene,
                precision: RenderPrecision::Quantized(key_precision),
                width: 4,
                height: 4,
                spp: 2,
                camera_seed: seed,
            })
        };
        let cfg = ServerConfig::default();
        let (bytes, _report) = run(&cfg, |client| {
            // Sequential submit+wait pairs force two separate batches.
            let a = client.submit(job(9)).unwrap();
            let first = client.wait(a).expect("answered").bytes;
            let b = client.submit(job(9)).unwrap();
            let second = client.wait(b).expect("answered").bytes;
            (first, second)
        });
        assert_eq!(bytes.0, bytes.1, "cached prepared model must not move response bytes");
        let stats = quantized_cache_stats(key_scene, key_precision);
        assert_eq!(stats.builds, 1, "quantize+calibrate must run exactly once for the key");
        assert!(stats.uses >= 2, "both batches served through the cache: {stats:?}");
    }

    #[test]
    fn responses_survive_shutdown_drain() {
        // Submit with a huge linger and no waiting: shutdown must flush the
        // batcher (Drain) and still answer everything.
        let cfg = ServerConfig {
            linger: Duration::from_secs(60),
            max_batch: 1000,
            ..ServerConfig::default()
        };
        let (n, report) = run(&cfg, |client| {
            for i in 0..10 {
                client.submit(tiny_render(i)).unwrap();
            }
            10
        });
        assert_eq!(n, 10);
        assert_eq!(report.responses.len(), 10);
        assert!(report.metrics.flushed_drain >= 1, "drain flush recorded");
        let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>(), "sorted by id");
    }

    #[test]
    fn deadline_zero_sheds_instead_of_rendering() {
        // A zero deadline is expired the instant it can be dequeued: the
        // scheduler must shed it (WaitOutcome::Shed), never render it.
        let cfg = ServerConfig::default();
        let (outcomes, report) = run(&cfg, |client| {
            (0..4)
                .map(|i| {
                    let id = client
                        .submit_with(tiny_render(i), Priority::Interactive, Some(Duration::ZERO))
                        .unwrap();
                    client.wait_outcome(id)
                })
                .collect::<Vec<_>>()
        });
        assert!(outcomes.iter().all(|o| *o == WaitOutcome::Shed), "all shed: {outcomes:?}");
        assert!(report.responses.is_empty(), "a shed request is never rendered");
        assert_eq!(report.metrics.shed, 4);
        assert_eq!(report.metrics.lanes[0].shed, 4);
        assert_eq!(report.metrics.requests, 0);
    }

    #[test]
    fn generous_deadline_serves_normally() {
        let cfg = ServerConfig::default();
        let (outcome, report) = run(&cfg, |client| {
            let id = client
                .submit_with(tiny_render(3), Priority::Interactive, Some(Duration::from_secs(300)))
                .unwrap();
            client.wait_outcome(id)
        });
        assert!(matches!(outcome, WaitOutcome::Answered(_)), "unexpired request served");
        assert_eq!(report.metrics.shed, 0);
        assert_eq!(report.metrics.lanes[0].served, 1);
    }
}
