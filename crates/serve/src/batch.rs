//! Request coalescing: a pure, clock-injected batching state machine.
//!
//! The batcher groups admitted requests by [`BatchKey`] and emits a
//! [`Batch`] when a group reaches the size threshold, when its oldest
//! member has lingered past the timeout, or when the server drains on
//! shutdown. All time comes in through method arguments, so every flush
//! policy is unit-testable without threads or sleeps.

use std::time::{Duration, Instant};

use crate::request::{BatchKey, ChunkSpan, Request};

/// Why a batch left the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The group reached `max_batch` members.
    Size,
    /// The group's oldest member waited past the linger timeout.
    Timeout,
    /// The server is shutting down and flushed everything pending.
    Drain,
}

impl FlushReason {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Timeout => "timeout",
            FlushReason::Drain => "drain",
        }
    }
}

/// A coalesced unit of work: same-key requests executed in one invocation.
#[derive(Debug)]
pub struct Batch {
    /// The shared coalescing key.
    pub key: BatchKey,
    /// Members, in admission order within the key.
    pub requests: Vec<Request>,
    /// Why this batch flushed.
    pub flush: FlushReason,
}

struct PendingGroup {
    key: BatchKey,
    // Each member keeps its own arrival instant. The linger deadline is
    // always anchored to the *oldest member still present* — never to a
    // group-open timestamp that can outlive (or predate) its members.
    // With a single `opened_at`, removing the oldest member (hedge
    // cancellation) left the deadline anchored to a request no longer in
    // the group, flushing the survivors early; and any scheme that
    // re-anchors on arrival would let a continuous same-key trickle
    // starve the flush forever.
    entries: Vec<(Request, Instant)>,
}

impl PendingGroup {
    /// Arrival instant of the oldest member still in the group.
    fn oldest(&self) -> Instant {
        self.entries.first().expect("groups are never empty").1
    }

    fn into_batch(self, flush: FlushReason) -> Batch {
        Batch {
            key: self.key,
            requests: self.entries.into_iter().map(|(r, _)| r).collect(),
            flush,
        }
    }
}

/// Batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Flush a group as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a group once its oldest member has waited this long.
    pub linger: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 8, linger: Duration::from_millis(2) }
    }
}

/// The coalescing state machine. Groups are kept in open order (a `Vec`,
/// not a hash map) so drain output is deterministic.
pub struct Batcher {
    cfg: BatcherConfig,
    pending: Vec<PendingGroup>,
}

impl Batcher {
    /// A batcher with the given policy.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        Batcher { cfg, pending: Vec::new() }
    }

    /// Admits one request at time `now`; returns a batch if the request's
    /// group just hit the size threshold.
    pub fn offer(&mut self, req: Request, now: Instant) -> Option<Batch> {
        let key = req.job.key();
        let group = match self.pending.iter_mut().find(|g| g.key == key) {
            Some(g) => g,
            None => {
                self.pending.push(PendingGroup { key: key.clone(), entries: Vec::new() });
                self.pending.last_mut().expect("just pushed")
            }
        };
        group.entries.push((req, now));
        if group.entries.len() >= self.cfg.max_batch {
            return self.take_key(&key, FlushReason::Size);
        }
        None
    }

    /// The instant at which the oldest pending group must flush, if any.
    /// Anchored to each group's oldest surviving member, so a trickle of
    /// later same-key arrivals can never push the deadline out.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|g| g.oldest() + self.cfg.linger).min()
    }

    /// Flushes every group whose oldest member lingered past the timeout
    /// at `now`, oldest first.
    pub fn expire(&mut self, now: Instant) -> Vec<Batch> {
        let mut out = Vec::new();
        while let Some(pos) = self
            .pending
            .iter()
            .position(|g| now.duration_since(g.oldest()) >= self.cfg.linger)
        {
            let g = self.pending.remove(pos);
            out.push(g.into_batch(FlushReason::Timeout));
        }
        out
    }

    /// Flushes everything pending (shutdown), in group-open order.
    pub fn drain(&mut self) -> Vec<Batch> {
        self.pending.drain(..).map(|g| g.into_batch(FlushReason::Drain)).collect()
    }

    /// Whether any request is waiting in the batcher.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes (cancels) the pending chunk `(id, chunk)`, if present. A
    /// group emptied by the removal leaves the batcher entirely, so its
    /// linger deadline dies with it; removing the oldest member re-anchors
    /// the group's deadline to the next-oldest survivor. The hedging layer
    /// uses this to pull a losing hedge copy that has not flushed yet.
    pub fn remove(&mut self, id: u64, chunk: ChunkSpan) -> Option<Request> {
        let (gi, ri) = self.pending.iter().enumerate().find_map(|(gi, g)| {
            g.entries
                .iter()
                .position(|(r, _)| r.id == id && r.chunk == chunk)
                .map(|ri| (gi, ri))
        })?;
        let (req, _) = self.pending[gi].entries.remove(ri);
        if self.pending[gi].entries.is_empty() {
            self.pending.remove(gi);
        }
        Some(req)
    }

    fn take_key(&mut self, key: &BatchKey, flush: FlushReason) -> Option<Batch> {
        let pos = self.pending.iter().position(|g| &g.key == key)?;
        let g = self.pending.remove(pos);
        Some(g.into_batch(flush))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, RenderPrecision, SceneKind, Workload};

    fn req(id: u64, scene: SceneKind, at: Instant) -> Request {
        Request {
            id,
            submitted_at: at,
            priority: crate::sched::Priority::Standard,
            arrival_ns: 0,
            deadline_ns: None,
            chunk: ChunkSpan::WHOLE,
            job: Workload::Render(RenderJob {
                scene,
                precision: RenderPrecision::Fp32,
                width: 8,
                height: 8,
                spp: 4,
                camera_seed: id,
            }),
        }
    }

    #[test]
    fn size_threshold_flushes_exactly_at_max_batch() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 3, linger: Duration::from_secs(60) });
        assert!(b.offer(req(0, SceneKind::Mic, t0), t0).is_none());
        assert!(b.offer(req(1, SceneKind::Mic, t0), t0).is_none());
        let batch = b.offer(req(2, SceneKind::Mic, t0), t0).expect("third member flushes");
        assert_eq!(batch.flush, FlushReason::Size);
        assert_eq!(batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(b.is_empty(), "flushed group leaves the batcher");
    }

    #[test]
    fn linger_timeout_flushes_undersized_groups() {
        let t0 = Instant::now();
        let linger = Duration::from_millis(5);
        let mut b = Batcher::new(BatcherConfig { max_batch: 100, linger });
        b.offer(req(0, SceneKind::Mic, t0), t0);
        assert_eq!(b.next_deadline(), Some(t0 + linger));
        assert!(b.expire(t0 + Duration::from_millis(1)).is_empty(), "not yet");
        let flushed = b.expire(t0 + linger);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].flush, FlushReason::Timeout);
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 2, linger: Duration::from_secs(1) });
        assert!(b.offer(req(0, SceneKind::Mic, t0), t0).is_none());
        assert!(b.offer(req(1, SceneKind::Lego, t0), t0).is_none(), "different scene, new group");
        let batch = b.offer(req(2, SceneKind::Mic, t0), t0).expect("mic group full");
        assert_eq!(batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        let rest = b.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].flush, FlushReason::Drain);
        assert_eq!(rest[0].requests[0].id, 1);
    }

    #[test]
    fn remove_cancels_a_pending_member_and_empties_its_group() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 10, linger: Duration::from_secs(1) });
        b.offer(req(0, SceneKind::Mic, t0), t0);
        b.offer(req(1, SceneKind::Mic, t0), t0);
        b.offer(req(2, SceneKind::Lego, t0), t0);
        assert_eq!(b.remove(1, ChunkSpan::WHOLE).map(|r| r.id), Some(1));
        assert!(b.remove(1, ChunkSpan::WHOLE).is_none(), "already gone");
        assert_eq!(
            b.remove(2, ChunkSpan::WHOLE).map(|r| r.id),
            Some(2),
            "sole member removes its group"
        );
        let drained = b.drain();
        assert_eq!(drained.len(), 1, "lego group died with its only member");
        assert_eq!(drained[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn continuous_trickle_cannot_starve_the_linger_flush() {
        // A same-key chunk arriving every linger/2 must not push the flush
        // out: the deadline is anchored to the oldest member's arrival, so
        // the group flushes exactly at t0 + linger no matter how many
        // younger members keep trickling in.
        let t0 = Instant::now();
        let linger = Duration::from_millis(4);
        let step = Duration::from_millis(2);
        let mut b = Batcher::new(BatcherConfig { max_batch: 100, linger });
        let mut flushed = Vec::new();
        for i in 0..6u64 {
            let at = t0 + step * i as u32;
            if at < t0 + linger {
                assert!(b.expire(at).is_empty(), "no flush strictly before t0 + linger");
            } else {
                flushed.extend(b.expire(at));
            }
            assert!(b.offer(req(i, SceneKind::Mic, at), at).is_none());
            let deadline = b.next_deadline().expect("group pending");
            assert!(
                deadline <= at + linger,
                "trickle member {i} must not push the deadline past its own arrival + linger"
            );
        }
        // Members 0–1 flush at t0 + linger (while 2 arrives), 2–3 at
        // t0 + 2·linger (while 4 arrives): the trickle never starves the
        // timer because the deadline is pinned to the oldest survivor.
        assert_eq!(flushed.len(), 2, "two linger flushes fired mid-trickle");
        assert!(flushed.iter().all(|b| b.flush == FlushReason::Timeout));
        assert_eq!(flushed[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(flushed[1].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 3]);
        let tail = b.expire(t0 + step * 5 + linger);
        assert_eq!(tail.len(), 1, "the tail of the trickle flushes on time too");
        assert_eq!(tail[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn removing_the_oldest_member_reanchors_the_deadline() {
        let t0 = Instant::now();
        let linger = Duration::from_millis(10);
        let mut b = Batcher::new(BatcherConfig { max_batch: 100, linger });
        b.offer(req(0, SceneKind::Mic, t0), t0);
        let t1 = t0 + Duration::from_millis(6);
        b.offer(req(1, SceneKind::Mic, t1), t1);
        assert_eq!(b.next_deadline(), Some(t0 + linger), "anchored to the oldest member");
        b.remove(0, ChunkSpan::WHOLE);
        assert_eq!(
            b.next_deadline(),
            Some(t1 + linger),
            "removing the oldest member re-anchors to the survivor"
        );
        assert!(
            b.expire(t0 + linger).is_empty(),
            "the survivor has not lingered yet — no early flush off a departed member's clock"
        );
        let flushed = b.expire(t1 + linger);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn drain_preserves_group_open_order() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 10, linger: Duration::from_secs(1) });
        b.offer(req(0, SceneKind::Palace, t0), t0);
        b.offer(req(1, SceneKind::Mic, t0), t0);
        b.offer(req(2, SceneKind::Palace, t0), t0);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(drained[1].requests[0].id, 1);
    }
}
