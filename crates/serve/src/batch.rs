//! Request coalescing: a pure, clock-injected batching state machine.
//!
//! The batcher groups admitted requests by [`BatchKey`] and emits a
//! [`Batch`] when a group reaches the size threshold, when its oldest
//! member has lingered past the timeout, or when the server drains on
//! shutdown. All time comes in through method arguments, so every flush
//! policy is unit-testable without threads or sleeps.

use std::time::{Duration, Instant};

use crate::request::{BatchKey, Request};

/// Why a batch left the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The group reached `max_batch` members.
    Size,
    /// The group's oldest member waited past the linger timeout.
    Timeout,
    /// The server is shutting down and flushed everything pending.
    Drain,
}

impl FlushReason {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Timeout => "timeout",
            FlushReason::Drain => "drain",
        }
    }
}

/// A coalesced unit of work: same-key requests executed in one invocation.
#[derive(Debug)]
pub struct Batch {
    /// The shared coalescing key.
    pub key: BatchKey,
    /// Members, in admission order within the key.
    pub requests: Vec<Request>,
    /// Why this batch flushed.
    pub flush: FlushReason,
}

struct PendingGroup {
    key: BatchKey,
    requests: Vec<Request>,
    opened_at: Instant,
}

/// Batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Flush a group as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a group once its oldest member has waited this long.
    pub linger: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 8, linger: Duration::from_millis(2) }
    }
}

/// The coalescing state machine. Groups are kept in open order (a `Vec`,
/// not a hash map) so drain output is deterministic.
pub struct Batcher {
    cfg: BatcherConfig,
    pending: Vec<PendingGroup>,
}

impl Batcher {
    /// A batcher with the given policy.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        Batcher { cfg, pending: Vec::new() }
    }

    /// Admits one request at time `now`; returns a batch if the request's
    /// group just hit the size threshold.
    pub fn offer(&mut self, req: Request, now: Instant) -> Option<Batch> {
        let key = req.job.key();
        let group = match self.pending.iter_mut().find(|g| g.key == key) {
            Some(g) => g,
            None => {
                self.pending.push(PendingGroup {
                    key: key.clone(),
                    requests: Vec::new(),
                    opened_at: now,
                });
                self.pending.last_mut().expect("just pushed")
            }
        };
        group.requests.push(req);
        if group.requests.len() >= self.cfg.max_batch {
            return self.take_key(&key, FlushReason::Size);
        }
        None
    }

    /// The instant at which the oldest pending group must flush, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|g| g.opened_at + self.cfg.linger).min()
    }

    /// Flushes every group whose linger expired at `now`, oldest first.
    pub fn expire(&mut self, now: Instant) -> Vec<Batch> {
        let mut out = Vec::new();
        while let Some(pos) = self
            .pending
            .iter()
            .position(|g| now.duration_since(g.opened_at) >= self.cfg.linger)
        {
            let g = self.pending.remove(pos);
            out.push(Batch { key: g.key, requests: g.requests, flush: FlushReason::Timeout });
        }
        out
    }

    /// Flushes everything pending (shutdown), in group-open order.
    pub fn drain(&mut self) -> Vec<Batch> {
        self.pending
            .drain(..)
            .map(|g| Batch { key: g.key, requests: g.requests, flush: FlushReason::Drain })
            .collect()
    }

    /// Whether any request is waiting in the batcher.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes (cancels) the pending request with `id`, if present. A
    /// group emptied by the removal leaves the batcher entirely, so its
    /// linger deadline dies with it. The hedging layer uses this to pull
    /// a losing hedge copy that has not flushed yet.
    pub fn remove(&mut self, id: u64) -> Option<Request> {
        let (gi, ri) = self.pending.iter().enumerate().find_map(|(gi, g)| {
            g.requests.iter().position(|r| r.id == id).map(|ri| (gi, ri))
        })?;
        let req = self.pending[gi].requests.remove(ri);
        if self.pending[gi].requests.is_empty() {
            self.pending.remove(gi);
        }
        Some(req)
    }

    fn take_key(&mut self, key: &BatchKey, flush: FlushReason) -> Option<Batch> {
        let pos = self.pending.iter().position(|g| &g.key == key)?;
        let g = self.pending.remove(pos);
        Some(Batch { key: g.key, requests: g.requests, flush })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, RenderPrecision, SceneKind, Workload};

    fn req(id: u64, scene: SceneKind, at: Instant) -> Request {
        Request {
            id,
            submitted_at: at,
            priority: crate::sched::Priority::Standard,
            arrival_ns: 0,
            deadline_ns: None,
            job: Workload::Render(RenderJob {
                scene,
                precision: RenderPrecision::Fp32,
                width: 8,
                height: 8,
                spp: 4,
                camera_seed: id,
            }),
        }
    }

    #[test]
    fn size_threshold_flushes_exactly_at_max_batch() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 3, linger: Duration::from_secs(60) });
        assert!(b.offer(req(0, SceneKind::Mic, t0), t0).is_none());
        assert!(b.offer(req(1, SceneKind::Mic, t0), t0).is_none());
        let batch = b.offer(req(2, SceneKind::Mic, t0), t0).expect("third member flushes");
        assert_eq!(batch.flush, FlushReason::Size);
        assert_eq!(batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(b.is_empty(), "flushed group leaves the batcher");
    }

    #[test]
    fn linger_timeout_flushes_undersized_groups() {
        let t0 = Instant::now();
        let linger = Duration::from_millis(5);
        let mut b = Batcher::new(BatcherConfig { max_batch: 100, linger });
        b.offer(req(0, SceneKind::Mic, t0), t0);
        assert_eq!(b.next_deadline(), Some(t0 + linger));
        assert!(b.expire(t0 + Duration::from_millis(1)).is_empty(), "not yet");
        let flushed = b.expire(t0 + linger);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].flush, FlushReason::Timeout);
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 2, linger: Duration::from_secs(1) });
        assert!(b.offer(req(0, SceneKind::Mic, t0), t0).is_none());
        assert!(b.offer(req(1, SceneKind::Lego, t0), t0).is_none(), "different scene, new group");
        let batch = b.offer(req(2, SceneKind::Mic, t0), t0).expect("mic group full");
        assert_eq!(batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        let rest = b.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].flush, FlushReason::Drain);
        assert_eq!(rest[0].requests[0].id, 1);
    }

    #[test]
    fn remove_cancels_a_pending_member_and_empties_its_group() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 10, linger: Duration::from_secs(1) });
        b.offer(req(0, SceneKind::Mic, t0), t0);
        b.offer(req(1, SceneKind::Mic, t0), t0);
        b.offer(req(2, SceneKind::Lego, t0), t0);
        assert_eq!(b.remove(1).map(|r| r.id), Some(1));
        assert!(b.remove(1).is_none(), "already gone");
        assert_eq!(b.remove(2).map(|r| r.id), Some(2), "sole member removes its group");
        let drained = b.drain();
        assert_eq!(drained.len(), 1, "lego group died with its only member");
        assert_eq!(drained[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn drain_preserves_group_open_order() {
        let t0 = Instant::now();
        let mut b = Batcher::new(BatcherConfig { max_batch: 10, linger: Duration::from_secs(1) });
        b.offer(req(0, SceneKind::Palace, t0), t0);
        b.offer(req(1, SceneKind::Mic, t0), t0);
        b.offer(req(2, SceneKind::Palace, t0), t0);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].requests.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(drained[1].requests[0].id, 1);
    }
}
