//! Seeded consistent-hash routing for the cluster simulator: a vnode ring
//! mapping coalescing keys ([`BatchKey`]) to replicas.
//!
//! Routing by batch key gives the cluster *scene affinity*: every request
//! for the same `(scene, precision)` — or the same table — lands on the
//! same replica, so that replica's batcher coalesces them and its model
//! cache stays warm. Each replica owns `vnodes` points whose positions
//! are a pure function of `(seed, replica, vnode)` — independent of how
//! many replicas exist — so adding or removing a replica only moves the
//! keys that replica owned (the classic minimal-remap property, pinned by
//! `tests/cluster_properties.rs`).

use crate::request::{fnv1a, BatchKey};

/// Ring shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Virtual nodes per replica: more vnodes, better key balance (at
    /// linear ring-size cost).
    pub vnodes: usize,
    /// Seed mixed into every vnode position; changing it reshuffles the
    /// whole key → replica assignment deterministically.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { vnodes: 64, seed: 0 }
    }
}

/// SplitMix64 finalizer: the bijective avalanche stage, used to turn
/// structured inputs (replica/vnode indices, FNV key hashes) into
/// uniformly spread ring positions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The consistent-hash ring: sorted vnode positions, each owned by a
/// replica. Supports at most [`MAX_REPLICAS`] replicas (the route walk
/// tracks visited replicas in a `u128` mask). Membership is dynamic:
/// [`HashRing::join`] and [`HashRing::leave`] add and remove a replica's
/// vnodes after construction — because every vnode position is a pure
/// function of `(seed, replica, vnode)`, a post-construction join is
/// byte-identical to having built the ring with that replica from the
/// start, which is what keeps remap minimal.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, replica)` sorted by position.
    points: Vec<(u64, u32)>,
    /// Ring shape, kept so joins can mint the newcomer's vnode positions.
    cfg: RouterConfig,
    /// Bitmask of member replica indices (one bit per replica).
    members: u128,
}

/// The most replicas a ring supports: the route walk tracks visited
/// replicas in a `u128` mask, one bit per replica.
pub const MAX_REPLICAS: usize = 128;

impl HashRing {
    /// A ring over `replicas` replicas with the given shape.
    ///
    /// # Panics
    ///
    /// Panics on a replica count [`HashRing::try_new`] would reject —
    /// infallible construction for callers that already validated.
    pub fn new(replicas: usize, cfg: &RouterConfig) -> Self {
        match Self::try_new(replicas, cfg) {
            Ok(ring) => ring,
            Err(e) => panic!("{e}"),
        }
    }

    /// A ring over `replicas` replicas with the given shape, validating
    /// the count: zero replicas cannot route, and more than
    /// [`MAX_REPLICAS`] overflows the route walk's visited mask. The
    /// error is a human-readable message for CLI surfaces.
    pub fn try_new(replicas: usize, cfg: &RouterConfig) -> Result<Self, String> {
        if replicas < 1 {
            return Err("a ring needs at least one replica".to_string());
        }
        if replicas > MAX_REPLICAS {
            return Err(format!(
                "{replicas} replicas exceed the supported maximum of {MAX_REPLICAS} \
                 (the route walk's visited mask holds {MAX_REPLICAS} replicas)"
            ));
        }
        let mut points = Vec::with_capacity(replicas * cfg.vnodes.max(1));
        for r in 0..replicas as u64 {
            points.extend(Self::points_of(r as usize, cfg));
        }
        points.sort_unstable();
        let members = if replicas == MAX_REPLICAS { u128::MAX } else { (1u128 << replicas) - 1 };
        Ok(HashRing { points, cfg: *cfg, members })
    }

    /// The vnode positions replica `r` owns — a pure function of
    /// `(seed, r, vnode)`, never of the member set.
    fn points_of(r: usize, cfg: &RouterConfig) -> impl Iterator<Item = (u64, u32)> + '_ {
        let r = r as u64;
        (0..cfg.vnodes.max(1) as u64).map(move |v| {
            // Position depends only on (seed, replica, vnode) — never
            // on the member set — which is what makes remap minimal when
            // the replica set changes.
            (mix(cfg.seed ^ mix(r << 32 | v)), r as u32)
        })
    }

    /// Number of member replicas currently on the ring.
    pub fn replicas(&self) -> usize {
        self.members.count_ones() as usize
    }

    /// Whether replica `r` is currently a ring member.
    pub fn is_member(&self, r: usize) -> bool {
        r < MAX_REPLICAS && self.members & (1u128 << r) != 0
    }

    /// Adds replica `r` to the ring (scale-out): its vnodes take exactly
    /// the key ranges they would own in a freshly built ring — no key
    /// moves between pre-existing members (pinned by
    /// `tests/cluster_properties.rs`). Errors if `r` is out of range or
    /// already a member.
    pub fn join(&mut self, r: usize) -> Result<(), String> {
        if r >= MAX_REPLICAS {
            return Err(format!(
                "replica {r} is out of range (the ring supports indices 0..{MAX_REPLICAS})"
            ));
        }
        if self.is_member(r) {
            return Err(format!("replica {r} is already a ring member"));
        }
        self.members |= 1u128 << r;
        self.points.extend(Self::points_of(r, &self.cfg));
        self.points.sort_unstable();
        Ok(())
    }

    /// Removes replica `r` from the ring (graceful leave): only the keys
    /// `r` owned remap, each to the member that owned it before `r`
    /// existed. Errors if `r` is not a member. Leaving the last member is
    /// allowed — an empty ring routes nothing.
    pub fn leave(&mut self, r: usize) -> Result<(), String> {
        if !self.is_member(r) {
            return Err(format!("replica {r} is not a ring member"));
        }
        self.members &= !(1u128 << r);
        self.points.retain(|&(_, p)| p as usize != r);
        Ok(())
    }

    /// The ring position of a coalescing key.
    pub fn key_hash(key: &BatchKey) -> u64 {
        mix(fnv1a(key.to_string().as_bytes()))
    }

    /// The replica owning `key_hash` ignoring liveness/capacity — the
    /// pure ownership map the balance and remap properties quantify.
    pub fn owner(&self, key_hash: u64) -> usize {
        self.route(key_hash, |_| true).expect("accept-all routing always lands")
    }

    /// Routes `key_hash` clockwise: the first replica at or after the hash
    /// that `accept`s (alive, inflight below bound, …). Each distinct
    /// replica is consulted at most once; `None` means no replica in the
    /// whole ring accepted.
    pub fn route(&self, key_hash: u64, accept: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|&(pos, _)| pos < key_hash);
        let mut tried: u128 = 0;
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            let bit = 1u128 << r;
            if tried & bit != 0 {
                continue;
            }
            tried |= bit;
            if accept(r as usize) {
                return Some(r as usize);
            }
            if tried.count_ones() == self.members.count_ones() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderPrecision, SceneKind};

    #[test]
    fn ring_is_seed_deterministic() {
        let a = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 9 });
        let b = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 9 });
        let c = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 10 });
        let keys: Vec<u64> = (0..200).map(|i| HashRing::key_hash(&BatchKey::Table(format!("t{i}")))).collect();
        assert!(keys.iter().all(|&k| a.owner(k) == b.owner(k)));
        assert!(keys.iter().any(|&k| a.owner(k) != c.owner(k)), "seed must move the map");
    }

    #[test]
    fn scene_affinity_same_key_same_owner() {
        let ring = HashRing::new(8, &RouterConfig::default());
        let k1 = HashRing::key_hash(&BatchKey::Render(SceneKind::Mic, RenderPrecision::Fp32));
        let k2 = HashRing::key_hash(&BatchKey::Render(SceneKind::Mic, RenderPrecision::Fp32));
        assert_eq!(ring.owner(k1), ring.owner(k2));
    }

    #[test]
    fn replica_count_is_validated_gracefully() {
        assert!(HashRing::try_new(1, &RouterConfig::default()).is_ok());
        assert!(HashRing::try_new(MAX_REPLICAS, &RouterConfig::default()).is_ok());
        let e = HashRing::try_new(0, &RouterConfig::default()).unwrap_err();
        assert!(e.contains("at least one replica"), "{e}");
        let e = HashRing::try_new(MAX_REPLICAS + 1, &RouterConfig::default()).unwrap_err();
        assert!(
            e.contains("129 replicas") && e.contains("maximum of 128"),
            "the error must name both the offending and the supported count: {e}"
        );
    }

    #[test]
    fn join_equals_construction_and_leave_inverts_it() {
        let cfg = RouterConfig { vnodes: 32, seed: 5 };
        let built = HashRing::new(5, &cfg);
        let mut grown = HashRing::new(4, &cfg);
        grown.join(4).expect("new index joins");
        assert_eq!(grown.replicas(), 5);
        let keys: Vec<u64> =
            (0..500).map(|i| HashRing::key_hash(&BatchKey::Table(format!("t{i}")))).collect();
        assert!(
            keys.iter().all(|&k| grown.owner(k) == built.owner(k)),
            "a post-construction join must be byte-identical to building with the replica"
        );
        grown.leave(4).expect("member leaves");
        let small = HashRing::new(4, &cfg);
        assert!(keys.iter().all(|&k| grown.owner(k) == small.owner(k)));
        assert!(!grown.is_member(4) && grown.is_member(3));
    }

    #[test]
    fn join_and_leave_validate_membership() {
        let mut ring = HashRing::new(2, &RouterConfig::default());
        let e = ring.join(1).unwrap_err();
        assert!(e.contains("already a ring member"), "{e}");
        let e = ring.join(MAX_REPLICAS).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        let e = ring.leave(7).unwrap_err();
        assert!(e.contains("not a ring member"), "{e}");
        ring.leave(0).expect("member leaves");
        ring.leave(1).expect("last member may leave");
        assert_eq!(ring.replicas(), 0);
        let k = HashRing::key_hash(&BatchKey::Table("t".into()));
        assert_eq!(ring.route(k, |_| true), None, "an empty ring routes nothing");
        ring.join(1).expect("rejoin");
        assert_eq!(ring.route(k, |_| true), Some(1));
    }

    #[test]
    fn route_skips_rejecting_replicas_and_gives_up_cleanly() {
        let ring = HashRing::new(4, &RouterConfig::default());
        let k = HashRing::key_hash(&BatchKey::Table("t".into()));
        let home = ring.owner(k);
        let alt = ring.route(k, |r| r != home).expect("three other replicas");
        assert_ne!(alt, home);
        assert_eq!(ring.route(k, |_| false), None, "nobody accepts, nobody routes");
        assert_eq!(ring.route(k, |r| r == 2), Some(2), "a single acceptor is always found");
    }
}
