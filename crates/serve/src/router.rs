//! Seeded consistent-hash routing for the cluster simulator: a vnode ring
//! mapping coalescing keys ([`BatchKey`]) to replicas.
//!
//! Routing by batch key gives the cluster *scene affinity*: every request
//! for the same `(scene, precision)` — or the same table — lands on the
//! same replica, so that replica's batcher coalesces them and its model
//! cache stays warm. Each replica owns `vnodes` points whose positions
//! are a pure function of `(seed, replica, vnode)` — independent of how
//! many replicas exist — so adding or removing a replica only moves the
//! keys that replica owned (the classic minimal-remap property, pinned by
//! `tests/cluster_properties.rs`).

use crate::request::{fnv1a, BatchKey};

/// Ring shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Virtual nodes per replica: more vnodes, better key balance (at
    /// linear ring-size cost).
    pub vnodes: usize,
    /// Seed mixed into every vnode position; changing it reshuffles the
    /// whole key → replica assignment deterministically.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { vnodes: 64, seed: 0 }
    }
}

/// SplitMix64 finalizer: the bijective avalanche stage, used to turn
/// structured inputs (replica/vnode indices, FNV key hashes) into
/// uniformly spread ring positions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The consistent-hash ring: sorted vnode positions, each owned by a
/// replica. Supports at most [`MAX_REPLICAS`] replicas (the route walk
/// tracks visited replicas in a `u128` mask).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, replica)` sorted by position.
    points: Vec<(u64, u32)>,
    replicas: usize,
}

/// The most replicas a ring supports: the route walk tracks visited
/// replicas in a `u128` mask, one bit per replica.
pub const MAX_REPLICAS: usize = 128;

impl HashRing {
    /// A ring over `replicas` replicas with the given shape.
    ///
    /// # Panics
    ///
    /// Panics on a replica count [`HashRing::try_new`] would reject —
    /// infallible construction for callers that already validated.
    pub fn new(replicas: usize, cfg: &RouterConfig) -> Self {
        match Self::try_new(replicas, cfg) {
            Ok(ring) => ring,
            Err(e) => panic!("{e}"),
        }
    }

    /// A ring over `replicas` replicas with the given shape, validating
    /// the count: zero replicas cannot route, and more than
    /// [`MAX_REPLICAS`] overflows the route walk's visited mask. The
    /// error is a human-readable message for CLI surfaces.
    pub fn try_new(replicas: usize, cfg: &RouterConfig) -> Result<Self, String> {
        if replicas < 1 {
            return Err("a ring needs at least one replica".to_string());
        }
        if replicas > MAX_REPLICAS {
            return Err(format!(
                "{replicas} replicas exceed the supported maximum of {MAX_REPLICAS} \
                 (the route walk's visited mask holds {MAX_REPLICAS} replicas)"
            ));
        }
        let vnodes = cfg.vnodes.max(1);
        let mut points = Vec::with_capacity(replicas * vnodes);
        for r in 0..replicas as u64 {
            for v in 0..vnodes as u64 {
                // Position depends only on (seed, replica, vnode) — never
                // on `replicas` — which is what makes remap minimal when
                // the replica set changes.
                let pos = mix(cfg.seed ^ mix(r << 32 | v));
                points.push((pos, r as u32));
            }
        }
        points.sort_unstable();
        Ok(HashRing { points, replicas })
    }

    /// Number of replicas the ring was built over.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The ring position of a coalescing key.
    pub fn key_hash(key: &BatchKey) -> u64 {
        mix(fnv1a(key.to_string().as_bytes()))
    }

    /// The replica owning `key_hash` ignoring liveness/capacity — the
    /// pure ownership map the balance and remap properties quantify.
    pub fn owner(&self, key_hash: u64) -> usize {
        self.route(key_hash, |_| true).expect("accept-all routing always lands")
    }

    /// Routes `key_hash` clockwise: the first replica at or after the hash
    /// that `accept`s (alive, inflight below bound, …). Each distinct
    /// replica is consulted at most once; `None` means no replica in the
    /// whole ring accepted.
    pub fn route(&self, key_hash: u64, accept: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|&(pos, _)| pos < key_hash);
        let mut tried: u128 = 0;
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            let bit = 1u128 << r;
            if tried & bit != 0 {
                continue;
            }
            tried |= bit;
            if accept(r as usize) {
                return Some(r as usize);
            }
            if tried.count_ones() as usize == self.replicas {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderPrecision, SceneKind};

    #[test]
    fn ring_is_seed_deterministic() {
        let a = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 9 });
        let b = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 9 });
        let c = HashRing::new(5, &RouterConfig { vnodes: 32, seed: 10 });
        let keys: Vec<u64> = (0..200).map(|i| HashRing::key_hash(&BatchKey::Table(format!("t{i}")))).collect();
        assert!(keys.iter().all(|&k| a.owner(k) == b.owner(k)));
        assert!(keys.iter().any(|&k| a.owner(k) != c.owner(k)), "seed must move the map");
    }

    #[test]
    fn scene_affinity_same_key_same_owner() {
        let ring = HashRing::new(8, &RouterConfig::default());
        let k1 = HashRing::key_hash(&BatchKey::Render(SceneKind::Mic, RenderPrecision::Fp32));
        let k2 = HashRing::key_hash(&BatchKey::Render(SceneKind::Mic, RenderPrecision::Fp32));
        assert_eq!(ring.owner(k1), ring.owner(k2));
    }

    #[test]
    fn replica_count_is_validated_gracefully() {
        assert!(HashRing::try_new(1, &RouterConfig::default()).is_ok());
        assert!(HashRing::try_new(MAX_REPLICAS, &RouterConfig::default()).is_ok());
        let e = HashRing::try_new(0, &RouterConfig::default()).unwrap_err();
        assert!(e.contains("at least one replica"), "{e}");
        let e = HashRing::try_new(MAX_REPLICAS + 1, &RouterConfig::default()).unwrap_err();
        assert!(
            e.contains("129 replicas") && e.contains("maximum of 128"),
            "the error must name both the offending and the supported count: {e}"
        );
    }

    #[test]
    fn route_skips_rejecting_replicas_and_gives_up_cleanly() {
        let ring = HashRing::new(4, &RouterConfig::default());
        let k = HashRing::key_hash(&BatchKey::Table("t".into()));
        let home = ring.owner(k);
        let alt = ring.route(k, |r| r != home).expect("three other replicas");
        assert_ne!(alt, home);
        assert_eq!(ring.route(k, |_| false), None, "nobody accepts, nobody routes");
        assert_eq!(ring.route(k, |r| r == 2), Some(2), "a single acceptor is always found");
    }
}
