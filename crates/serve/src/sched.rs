//! Priority-lane scheduling: a pure, clock-injected admission scheduler.
//!
//! The serving front-end classes traffic into lanes ([`Priority`]) and
//! drains them with a **weighted deficit round robin**: every replenish
//! round hands each non-empty lane credit equal to its weight, and a lane
//! is served while its credit lasts — so interactive traffic overtakes
//! batch by the configured ratio without ever starving it. Within a lane,
//! requests are served **per-key round robin** (oldest first within a
//! key), so one hot `(scene, precision)` key cannot monopolize the
//! batcher. On every dequeue the scheduler first **sheds** requests whose
//! deadline passed while they queued: an expired request is dropped and
//! counted, never rendered.
//!
//! Like the batcher, the scheduler is a pure state machine: all time comes
//! in through method arguments (`now_ns`, nanoseconds on the caller's
//! clock — real elapsed time in the threaded server, virtual ticks in the
//! trace harness), and [`LaneScheduler::step`] operates on plain
//! `VecDeque` lane queues. Every decision is therefore a deterministic
//! function of the queue contents and the injected clock, which is what
//! the scheduling test harness and the serve-equivalence suite pin down.

use std::collections::VecDeque;

use crate::request::{BatchKey, Request};

/// Traffic class of a render request, in descending urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-critical traffic (AR/VR frame loops): highest drain weight.
    Interactive,
    /// Ordinary request/response traffic — the default class.
    Standard,
    /// Throughput traffic (offline re-renders, table regeneration):
    /// lowest weight, but never starved.
    Batch,
}

impl Priority {
    /// All classes, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable lowercase name (reports, lane labels).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "standard" => Some(Priority::Standard),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Index into [`Priority::ALL`]-shaped tables.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }
}

/// One scheduler lane.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Label used in reports and the JSON record.
    pub name: String,
    /// Drain weight: services granted per replenish round while non-empty.
    pub weight: u64,
    /// Admission capacity of this lane; `None` inherits the server's
    /// `queue_capacity`. An explicit `Some(0)` hard-rejects the lane's
    /// whole traffic class at admission (the per-class overload posture).
    pub capacity: Option<usize>,
}

/// The scheduling policy: the lane set and the class → lane mapping.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// The lanes, in drain-preference order (ties in the deficit scan
    /// resolve toward lower indices).
    pub lanes: Vec<LaneConfig>,
    /// Lane index per class, indexed by [`Priority::index`].
    pub lane_by_class: [usize; 3],
}

impl SchedConfig {
    /// The default three-lane policy: interactive/standard/batch with
    /// 4/2/1 drain weights, all inheriting the server's queue capacity.
    pub fn priority_lanes() -> Self {
        let lane = |name: &str, weight| LaneConfig { name: name.into(), weight, capacity: None };
        SchedConfig {
            lanes: vec![lane("interactive", 4), lane("standard", 2), lane("batch", 1)],
            lane_by_class: [0, 1, 2],
        }
    }

    /// The degenerate single-lane policy: every class shares one FIFO-fed
    /// lane — with no deadlines this reproduces the pre-scheduler FIFO
    /// server byte for byte (the serve-equivalence suite pins the digest).
    pub fn single_lane() -> Self {
        SchedConfig {
            lanes: vec![LaneConfig { name: "all".into(), weight: 1, capacity: None }],
            lane_by_class: [0, 0, 0],
        }
    }

    /// The lane a class is admitted to.
    pub fn lane_of(&self, p: Priority) -> usize {
        self.lane_by_class[p.index()]
    }

    /// Per-lane admission capacities with `None` resolved to `inherit`.
    pub fn capacities(&self, inherit: usize) -> Vec<usize> {
        self.lanes.iter().map(|l| l.capacity.unwrap_or(inherit)).collect()
    }

    /// Panics if the policy is malformed (no lanes, zero weight, or a
    /// class mapped out of range) — caught at server construction, not
    /// mid-drain.
    pub fn validate(&self) {
        assert!(!self.lanes.is_empty(), "SchedConfig requires at least one lane");
        assert!(self.lanes.iter().all(|l| l.weight >= 1), "lane weights must be >= 1");
        assert!(
            self.lane_by_class.iter().all(|&l| l < self.lanes.len()),
            "lane_by_class index out of range"
        );
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::priority_lanes()
    }
}

/// One scheduling decision from [`LaneScheduler::step`].
#[derive(Debug)]
pub enum SchedStep {
    /// `req` is next to serve, drained from `lane`.
    Serve {
        /// Lane the request was drained from.
        lane: usize,
        /// The request.
        req: Request,
    },
    /// `req`'s deadline passed while it queued: dropped, never rendered.
    Shed {
        /// Lane the request was shed from.
        lane: usize,
        /// The dropped request.
        req: Request,
    },
}

/// The weighted-deficit lane scheduler. Holds only policy state (deficits,
/// the round-robin cursor, per-lane key rotations); the queues themselves
/// are passed into [`LaneScheduler::step`], so the same state machine
/// drives both the threaded server (via `fnr_par::mpmc::Lanes::recv_with`)
/// and the single-threaded virtual-clock harness.
#[derive(Debug)]
pub struct LaneScheduler {
    weights: Vec<u64>,
    deficits: Vec<u64>,
    /// Lane the deficit scan starts from (stays on a lane while its
    /// credit lasts, so a lane's weight is spent in one contiguous run).
    cursor: usize,
    /// Per-lane round-robin rotation of the keys currently queued.
    rotations: Vec<VecDeque<BatchKey>>,
}

impl LaneScheduler {
    /// A scheduler for `cfg` (validated).
    pub fn new(cfg: &SchedConfig) -> Self {
        cfg.validate();
        LaneScheduler {
            weights: cfg.lanes.iter().map(|l| l.weight).collect(),
            deficits: vec![0; cfg.lanes.len()],
            cursor: 0,
            rotations: cfg.lanes.iter().map(|_| VecDeque::new()).collect(),
        }
    }

    /// One scheduling decision over `lanes` at scheduler time `now_ns`:
    /// sheds the first expired request it finds (highest-urgency lane
    /// first, oldest first within a lane), otherwise serves the next
    /// request under the weighted-deficit / per-key-round-robin policy.
    /// `None` means every lane is empty.
    ///
    /// Exactly one request leaves `lanes` per `Some` return, so callers
    /// loop `step` to drain.
    pub fn step(&mut self, lanes: &mut [VecDeque<Request>], now_ns: u64) -> Option<SchedStep> {
        debug_assert_eq!(lanes.len(), self.weights.len(), "lane count mismatch");
        // Shed-on-dequeue: expired requests leave before any service
        // decision, so an expired request can never be picked.
        for (li, lane) in lanes.iter_mut().enumerate() {
            if let Some(pos) = lane.iter().position(|r| r.expired_at(now_ns)) {
                let req = lane.remove(pos).expect("position came from iter");
                return Some(SchedStep::Shed { lane: li, req });
            }
        }
        if lanes.iter().all(|l| l.is_empty()) {
            return None;
        }
        let n = lanes.len();
        loop {
            // Scan from the cursor for a lane that still has credit.
            let mut picked = None;
            for k in 0..n {
                let li = (self.cursor + k) % n;
                if lanes[li].is_empty() {
                    // Standard DRR: an emptied lane forfeits its credit,
                    // so idle time cannot be hoarded into a later burst.
                    self.deficits[li] = 0;
                    continue;
                }
                if self.deficits[li] >= 1 {
                    picked = Some(li);
                    break;
                }
            }
            match picked {
                Some(li) => {
                    self.deficits[li] -= 1;
                    self.cursor = li;
                    let req = self.pop_key_fair(&mut lanes[li], li);
                    return Some(SchedStep::Serve { lane: li, req });
                }
                None => {
                    // Replenish round: every non-empty lane earns its
                    // weight; the scan restarts at the most urgent lane.
                    for (li, lane) in lanes.iter().enumerate() {
                        if lane.is_empty() {
                            self.deficits[li] = 0;
                        } else {
                            self.deficits[li] += self.weights[li];
                        }
                    }
                    self.cursor = 0;
                }
            }
        }
    }

    /// Pops the next request of lane `li` under per-key round robin: the
    /// rotation's front key yields its oldest request, then moves to the
    /// back. Keys enter the rotation in arrival order and leave when their
    /// last request does.
    ///
    /// Runs under the admission-queue lock in the threaded server, so key
    /// comparisons go through the allocation-free [`Workload::matches_key`]
    /// / [`Workload::same_key`] forms; a key is only ever *constructed*
    /// (cloning a table name) when it first enters the rotation.
    fn pop_key_fair(&mut self, lane: &mut VecDeque<Request>, li: usize) -> Request {
        // One scan: the position of each distinct key's first (oldest)
        // request, in arrival order.
        let mut firsts: Vec<usize> = Vec::new();
        for (i, r) in lane.iter().enumerate() {
            if !firsts.iter().any(|&j| lane[j].job.same_key(&r.job)) {
                firsts.push(i);
            }
        }
        let rotation = &mut self.rotations[li];
        rotation.retain(|k| firsts.iter().any(|&j| lane[j].job.matches_key(k)));
        for &j in &firsts {
            if !rotation.iter().any(|k| lane[j].job.matches_key(k)) {
                rotation.push_back(lane[j].job.key());
            }
        }
        let pos = firsts
            .into_iter()
            .find(|&j| lane[j].job.matches_key(&rotation[0]))
            .expect("rotation front is a present key");
        rotation.rotate_left(1);
        lane.remove(pos).expect("position came from the scan")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RenderJob, RenderPrecision, SceneKind, Workload};
    use std::time::Instant;

    fn req(id: u64, scene: SceneKind, priority: Priority, deadline_ns: Option<u64>) -> Request {
        Request {
            id,
            submitted_at: Instant::now(),
            priority,
            arrival_ns: 0,
            deadline_ns,
            chunk: crate::request::ChunkSpan::WHOLE,
            job: Workload::Render(RenderJob {
                scene,
                precision: RenderPrecision::Fp32,
                width: 4,
                height: 4,
                spp: 2,
                camera_seed: id,
            }),
        }
    }

    fn lanes_of(reqs: Vec<Vec<Request>>) -> Vec<VecDeque<Request>> {
        reqs.into_iter().map(VecDeque::from).collect()
    }

    fn drain_ids(sched: &mut LaneScheduler, lanes: &mut [VecDeque<Request>]) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        while let Some(step) = sched.step(lanes, 0) {
            match step {
                SchedStep::Serve { lane, req } => out.push((lane, req.id)),
                SchedStep::Shed { .. } => panic!("no deadlines in this test"),
            }
        }
        out
    }

    #[test]
    fn weighted_deficit_interleaves_lanes_by_weight() {
        let cfg = SchedConfig::priority_lanes();
        let mut sched = LaneScheduler::new(&cfg);
        let mut lanes = lanes_of(vec![
            (0..8).map(|i| req(i, SceneKind::Mic, Priority::Interactive, None)).collect(),
            (8..16).map(|i| req(i, SceneKind::Mic, Priority::Standard, None)).collect(),
            (16..24).map(|i| req(i, SceneKind::Mic, Priority::Batch, None)).collect(),
        ]);
        let order = drain_ids(&mut sched, &mut lanes);
        assert_eq!(order.len(), 24);
        // First replenish round: 4 interactive, 2 standard, 1 batch.
        let first_round: Vec<usize> = order[..7].iter().map(|&(l, _)| l).collect();
        assert_eq!(first_round, vec![0, 0, 0, 0, 1, 1, 2], "4/2/1 drain ratio");
        // Batch is never starved: its lane appears within every 7 services.
        for window in order.chunks(7) {
            if window.len() == 7 {
                assert!(window.iter().any(|&(l, _)| l == 2), "batch starved in {window:?}");
            }
        }
    }

    #[test]
    fn per_key_round_robin_breaks_hot_key_monopoly() {
        let cfg = SchedConfig::single_lane();
        let mut sched = LaneScheduler::new(&cfg);
        // 6 hot-key (Mic) requests queued ahead of 2 cold-key requests.
        let mut queue: Vec<Request> =
            (0..6).map(|i| req(i, SceneKind::Mic, Priority::Standard, None)).collect();
        queue.push(req(6, SceneKind::Lego, Priority::Standard, None));
        queue.push(req(7, SceneKind::Palace, Priority::Standard, None));
        let mut lanes = lanes_of(vec![queue]);
        let ids: Vec<u64> = drain_ids(&mut sched, &mut lanes).into_iter().map(|(_, id)| id).collect();
        // Round robin across the 3 keys: the cold keys surface within the
        // first key-rotation sweep, not behind the whole hot backlog.
        assert_eq!(ids[..3], [0, 6, 7], "each queued key serves once before any repeats");
        assert_eq!(ids[3..], [1, 2, 3, 4, 5], "hot key then drains oldest-first");
    }

    #[test]
    fn expired_requests_shed_before_any_service() {
        let cfg = SchedConfig::priority_lanes();
        let mut sched = LaneScheduler::new(&cfg);
        let mut lanes = lanes_of(vec![
            vec![req(0, SceneKind::Mic, Priority::Interactive, Some(100))],
            vec![req(1, SceneKind::Mic, Priority::Standard, Some(10_000))],
            vec![],
        ]);
        // At t=100 the interactive request is exactly at its deadline →
        // expired (service must start strictly before the deadline).
        match sched.step(&mut lanes, 100) {
            Some(SchedStep::Shed { lane: 0, req }) => assert_eq!(req.id, 0),
            other => panic!("expected shed of request 0, got {other:?}"),
        }
        match sched.step(&mut lanes, 100) {
            Some(SchedStep::Serve { lane: 1, req }) => assert_eq!(req.id, 1, "unexpired serves"),
            other => panic!("expected serve of request 1, got {other:?}"),
        }
        assert!(sched.step(&mut lanes, 100).is_none());
    }

    #[test]
    fn empty_lane_forfeits_deficit() {
        let cfg = SchedConfig::priority_lanes();
        let mut sched = LaneScheduler::new(&cfg);
        // Interactive drains alone first (earning and spending credit)…
        let mut lanes =
            lanes_of(vec![vec![req(0, SceneKind::Mic, Priority::Interactive, None)], vec![], vec![]]);
        drain_ids(&mut sched, &mut lanes);
        // …then goes idle; a later batch-only phase must not be taxed by
        // credit interactive hoarded while idle.
        let mut lanes =
            lanes_of(vec![vec![], vec![], (0..3).map(|i| req(i, SceneKind::Mic, Priority::Batch, None)).collect()]);
        let order = drain_ids(&mut sched, &mut lanes);
        assert_eq!(order.iter().map(|&(l, _)| l).collect::<Vec<_>>(), vec![2, 2, 2]);
    }

    #[test]
    fn single_lane_without_keys_is_fifo() {
        let cfg = SchedConfig::single_lane();
        let mut sched = LaneScheduler::new(&cfg);
        // All requests share one key → per-key RR degenerates to FIFO.
        let mut lanes =
            lanes_of(vec![(0..5).map(|i| req(i, SceneKind::Mic, Priority::Batch, None)).collect()]);
        let ids: Vec<u64> = drain_ids(&mut sched, &mut lanes).into_iter().map(|(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_lane_set_is_rejected() {
        SchedConfig { lanes: vec![], lane_by_class: [0, 0, 0] }.validate();
    }
}
