//! Gray-failure resilience primitives for the cluster DES: a
//! deterministic, virtual-clock failure detector, hedged-request policy,
//! and a CoDel-style overload admission controller.
//!
//! A dead replica is easy — it stops answering and the fault plan says
//! so. The failure mode that dominates real fleets is the replica that is
//! merely *slow* (a saturated disk, a throttled core, our `slow@T:R:F`
//! fault): it keeps accepting work and misses every deadline. The
//! [`HealthDetector`] watches each replica's **completion progress** on
//! the shared virtual clock and scores it phi-accrual style: the
//! suspicion score is the time since the replica last completed a batch,
//! as a multiple of its smoothed inter-completion gap. A replica that is
//! busy but not completing degrades `Healthy → Suspect → Dead`; the
//! front door prefers Healthy replicas, falls back to Suspect, and
//! touches a gray-Dead replica only when nothing better exists. An idle
//! replica owes no progress and is never suspected.
//!
//! Everything here is integer arithmetic on virtual nanoseconds —
//! observed only at event-processing points, in event order — so every
//! score, state transition, hedge and admission decision is a pure
//! function of the schedule and the fault plan, byte-identical at any
//! `FNR_THREADS`.

use crate::sched::Priority;

/// A replica's detector state, in degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Completing on pace (or idle — an idle replica owes no progress).
    Healthy,
    /// Busy but behind pace: the front door routes around it when it can,
    /// and pending un-started requests on it are hedged.
    Suspect,
    /// So far behind pace it is treated as gray-dead: it takes new work
    /// only when no Healthy or Suspect replica accepts.
    Dead,
}

impl HealthState {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
        }
    }
}

/// Failure-detector policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Master switch: disabled (the default) means every replica always
    /// reads Healthy and routing is byte-identical to the pre-detector
    /// cluster.
    pub enabled: bool,
    /// Initial estimate of a replica's inter-completion gap before any
    /// observation; `0` derives it from the cluster's virtual service
    /// time. The per-replica estimate then tracks reality as an integer
    /// EWMA (α = 1/8).
    pub baseline_gap_ns: u64,
    /// Suspicion score (in thousandths: elapsed-since-progress over the
    /// smoothed gap × 1000) at or above which a busy replica is Suspect.
    pub suspect_milli: u64,
    /// Score at or above which a busy replica is gray-Dead.
    pub dead_milli: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: false,
            baseline_gap_ns: 0,
            suspect_milli: 4_000,
            dead_milli: 16_000,
        }
    }
}

/// One replica's progress book-keeping.
#[derive(Debug, Clone, Copy)]
struct ReplicaHealth {
    /// Smoothed inter-completion gap (integer EWMA, never below 1 ns).
    mean_gap_ns: u64,
    /// Virtual time of the last completion (or of going busy).
    last_progress_ns: u64,
    /// Whether any virtual worker is in service — only a busy replica
    /// owes progress.
    busy: bool,
    /// Cached state as of the last [`HealthDetector::refresh`], so
    /// transitions can be counted exactly once.
    state: HealthState,
}

/// The deterministic phi-accrual-style failure detector: per-replica
/// completion heartbeats on the virtual clock. See the module docs for
/// the model.
#[derive(Debug, Clone)]
pub struct HealthDetector {
    cfg: HealthConfig,
    baseline_gap_ns: u64,
    replicas: Vec<ReplicaHealth>,
}

impl HealthDetector {
    /// A detector over `replicas` replicas; `default_gap_ns` seeds the
    /// per-replica gap estimate when the config does not pin one.
    pub fn new(cfg: HealthConfig, replicas: usize, default_gap_ns: u64) -> Self {
        let baseline_gap_ns = if cfg.baseline_gap_ns > 0 {
            cfg.baseline_gap_ns
        } else {
            default_gap_ns.max(1)
        };
        HealthDetector {
            cfg,
            baseline_gap_ns,
            replicas: vec![
                ReplicaHealth {
                    mean_gap_ns: baseline_gap_ns,
                    last_progress_ns: 0,
                    busy: false,
                    state: HealthState::Healthy,
                };
                replicas
            ],
        }
    }

    /// Whether the detector influences routing at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Registers a newly joined replica (scale-out), starting Healthy
    /// with the baseline gap estimate.
    pub fn push_replica(&mut self, now_ns: u64) {
        self.replicas.push(ReplicaHealth {
            mean_gap_ns: self.baseline_gap_ns,
            last_progress_ns: now_ns,
            busy: false,
            state: HealthState::Healthy,
        });
    }

    /// One observation of replica `r` at an event-processing point:
    /// whether any of its workers is in service, and whether it completed
    /// a batch at this instant (the heartbeat).
    pub fn observe(&mut self, r: usize, busy: bool, progressed: bool, now_ns: u64) {
        let h = &mut self.replicas[r];
        if progressed {
            let gap = now_ns.saturating_sub(h.last_progress_ns);
            // Integer EWMA, α = 1/8: adapts to the replica's real pace so
            // a legitimately slow service model is not forever Suspect.
            h.mean_gap_ns = (h.mean_gap_ns - h.mean_gap_ns / 8 + gap / 8).max(1);
            h.last_progress_ns = now_ns;
        }
        if busy && !h.busy {
            // Going busy arms the clock: suspicion accrues from here.
            h.last_progress_ns = now_ns;
        }
        h.busy = busy;
    }

    /// The suspicion score of replica `r` at `now_ns`, in thousandths:
    /// time since last progress over the smoothed gap, × 1000. Zero while
    /// idle; monotone in elapsed time while busy (the phi-accrual shape,
    /// pinned by `tests/cluster_health.rs`).
    pub fn score_milli(&self, r: usize, now_ns: u64) -> u64 {
        let h = &self.replicas[r];
        if !h.busy {
            return 0;
        }
        now_ns.saturating_sub(h.last_progress_ns).saturating_mul(1_000) / h.mean_gap_ns
    }

    /// The state of replica `r` at `now_ns`. With the detector disabled
    /// everything reads Healthy.
    pub fn state(&self, r: usize, now_ns: u64) -> HealthState {
        if !self.cfg.enabled {
            return HealthState::Healthy;
        }
        let score = self.score_milli(r, now_ns);
        if score >= self.cfg.dead_milli {
            HealthState::Dead
        } else if score >= self.cfg.suspect_milli {
            HealthState::Suspect
        } else {
            HealthState::Healthy
        }
    }

    /// Re-evaluates replica `r`'s cached state at `now_ns` and returns
    /// `Some((old, new))` on a transition — called at event-processing
    /// points so transition counters (and suspect-triggered hedges) fire
    /// exactly once per crossing, in event order.
    pub fn refresh(&mut self, r: usize, now_ns: u64) -> Option<(HealthState, HealthState)> {
        let new = self.state(r, now_ns);
        let old = self.replicas[r].state;
        if new == old {
            return None;
        }
        self.replicas[r].state = new;
        Some((old, new))
    }

    /// Number of replicas the detector tracks.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the detector tracks no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

/// Hedged-request policy: a routed request that has not *started service*
/// within `delay_ns` of admission (or whose replica turns Suspect) is
/// speculatively cloned to the next accepting ring replica. First
/// completion wins; the losing copy is cancelled (removed from its queue)
/// or suppressed (its in-service work completes but is discarded).
/// `u64::MAX` disables hedging — the disabled path is byte-identical to
/// the pre-hedging cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Virtual nanoseconds a request may sit un-started before its hedge
    /// fires; `u64::MAX` = never (hedging off).
    pub delay_ns: u64,
}

impl HedgeConfig {
    /// Hedging off.
    pub fn disabled() -> Self {
        HedgeConfig { delay_ns: u64::MAX }
    }

    /// Whether hedging is on.
    pub fn enabled(&self) -> bool {
        self.delay_ns != u64::MAX
    }
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig::disabled()
    }
}

/// CoDel-style front-door admission policy: per-replica queue-delay
/// control that sheds Batch-class arrivals early instead of letting every
/// class miss its deadline under overload.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch: disabled (the default) admits everything the router
    /// accepts, byte-identical to the pre-controller cluster.
    pub enabled: bool,
    /// Target queue delay: a replica whose observed request queue delays
    /// stay at or above this for a full interval enters the dropping
    /// state.
    pub target_ns: u64,
    /// How long delays must continuously exceed the target before
    /// dropping starts (CoDel's interval).
    pub interval_ns: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { enabled: false, target_ns: 2_000_000, interval_ns: 10_000_000 }
    }
}

/// One replica's CoDel control state.
#[derive(Debug, Clone, Copy, Default)]
struct CoDelLane {
    /// When observed delays first went (and stayed) above target.
    above_since: Option<u64>,
    /// Whether the replica is currently shedding Batch-class arrivals.
    dropping: bool,
}

/// The per-replica CoDel-style admission controller. Observations are the
/// queue delays of requests at the instant a virtual worker takes them —
/// the same deterministic event stream the failure detector rides — so
/// the dropping state is a pure function of the schedule.
#[derive(Debug, Clone)]
pub struct CoDelAdmission {
    cfg: AdmissionConfig,
    lanes: Vec<CoDelLane>,
}

impl CoDelAdmission {
    /// A controller over `replicas` replicas.
    pub fn new(cfg: AdmissionConfig, replicas: usize) -> Self {
        CoDelAdmission { cfg, lanes: vec![CoDelLane::default(); replicas] }
    }

    /// Whether the controller sheds at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Registers a newly joined replica (scale-out).
    pub fn push_replica(&mut self) {
        self.lanes.push(CoDelLane::default());
    }

    /// One queue-delay observation for replica `r`: a request started
    /// service after waiting `queue_delay_ns`. A below-target observation
    /// resets the controller (the standing queue drained); delays that
    /// stay above target for a full interval flip it into dropping.
    pub fn observe(&mut self, r: usize, queue_delay_ns: u64, now_ns: u64) {
        if !self.cfg.enabled {
            return;
        }
        let lane = &mut self.lanes[r];
        if queue_delay_ns < self.cfg.target_ns {
            lane.above_since = None;
            lane.dropping = false;
        } else {
            match lane.above_since {
                None => lane.above_since = Some(now_ns),
                Some(t0) if now_ns.saturating_sub(t0) >= self.cfg.interval_ns => {
                    lane.dropping = true
                }
                Some(_) => {}
            }
        }
    }

    /// Whether a fresh arrival of `priority` routed to replica `r` should
    /// be shed at the front door. Only Batch-class work is sacrificed —
    /// the point is to keep Interactive/Standard deadlines alive.
    pub fn should_shed(&self, r: usize, priority: Priority) -> bool {
        self.cfg.enabled && priority == Priority::Batch && self.lanes[r].dropping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(suspect: u64, dead: u64) -> HealthDetector {
        let cfg = HealthConfig {
            enabled: true,
            baseline_gap_ns: 1_000,
            suspect_milli: suspect,
            dead_milli: dead,
        };
        HealthDetector::new(cfg, 2, 500)
    }

    #[test]
    fn idle_replicas_owe_no_progress() {
        let mut d = detector(4_000, 16_000);
        assert_eq!(d.score_milli(0, 1_000_000), 0);
        assert_eq!(d.state(0, 1_000_000), HealthState::Healthy);
        // Going busy arms the clock at that instant, not at zero.
        d.observe(0, true, false, 1_000_000);
        assert_eq!(d.score_milli(0, 1_000_000), 0);
        assert!(d.score_milli(0, 1_004_000) >= 4_000);
        // Going idle again disarms.
        d.observe(0, false, false, 1_010_000);
        assert_eq!(d.score_milli(0, 2_000_000), 0);
    }

    #[test]
    fn states_degrade_with_missed_progress_and_recover_on_completion() {
        let mut d = detector(4_000, 16_000);
        d.observe(0, true, false, 0);
        assert_eq!(d.state(0, 3_999), HealthState::Healthy);
        assert_eq!(d.state(0, 4_000), HealthState::Suspect);
        assert_eq!(d.state(0, 16_000), HealthState::Dead);
        assert!(d.refresh(0, 16_000).is_some(), "crossing is a transition");
        assert!(d.refresh(0, 17_000).is_none(), "no re-count without a crossing");
        // A completion is progress: the score collapses to zero.
        d.observe(0, true, true, 20_000);
        assert_eq!(d.score_milli(0, 20_000), 0);
        assert_eq!(d.refresh(0, 20_000), Some((HealthState::Dead, HealthState::Healthy)));
    }

    #[test]
    fn ewma_tracks_the_replicas_real_pace() {
        let mut d = detector(4_000, 16_000);
        d.observe(0, true, false, 0);
        // Steady 10 µs completion gaps: the smoothed gap climbs toward
        // 10 µs, so a 20 µs silence stops looking alarming.
        let mut t = 0;
        for _ in 0..64 {
            t += 10_000;
            d.observe(0, true, true, t);
        }
        assert!(d.score_milli(0, t + 20_000) < 4_000, "2x the real pace is not Suspect");
        // The untouched replica keeps its baseline estimate.
        d.observe(1, true, false, t);
        assert_eq!(d.state(1, t + 3_999), HealthState::Healthy);
        assert_eq!(d.state(1, t + 4_000), HealthState::Suspect);
    }

    #[test]
    fn disabled_detector_reads_healthy_forever() {
        let mut d = HealthDetector::new(HealthConfig::default(), 1, 500);
        d.observe(0, true, false, 0);
        assert_eq!(d.state(0, u64::MAX / 2), HealthState::Healthy);
        assert!(d.refresh(0, u64::MAX / 2).is_none());
    }

    #[test]
    fn codel_drops_batch_class_only_after_a_sustained_standing_queue() {
        let cfg = AdmissionConfig { enabled: true, target_ns: 1_000, interval_ns: 5_000 };
        let mut c = CoDelAdmission::new(cfg, 1);
        // Above target but not yet for a full interval: no dropping.
        c.observe(0, 2_000, 0);
        c.observe(0, 2_000, 4_999);
        assert!(!c.should_shed(0, Priority::Batch));
        // Sustained past the interval: Batch sheds, the rest never does.
        c.observe(0, 2_000, 5_000);
        assert!(c.should_shed(0, Priority::Batch));
        assert!(!c.should_shed(0, Priority::Interactive));
        assert!(!c.should_shed(0, Priority::Standard));
        // One below-target observation (queue drained) resets everything.
        c.observe(0, 500, 6_000);
        assert!(!c.should_shed(0, Priority::Batch));
    }

    #[test]
    fn disabled_admission_never_sheds() {
        let mut c = CoDelAdmission::new(AdmissionConfig::default(), 1);
        for t in 0..20u64 {
            c.observe(0, u64::MAX / 4, t * 1_000_000);
        }
        assert!(!c.should_shed(0, Priority::Batch));
    }

    #[test]
    fn hedge_config_sentinel_is_disabled() {
        assert!(!HedgeConfig::default().enabled());
        assert!(!HedgeConfig::disabled().enabled());
        assert!(HedgeConfig { delay_ns: 300_000 }.enabled());
    }
}
