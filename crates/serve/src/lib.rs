//! Batched render-request serving front-end for the FlexNeRFer
//! reproduction.
//!
//! The ROADMAP's north star is serving heavy render traffic; this crate is
//! the request-level runtime above the data-parallel substrate:
//!
//! * bounded per-class admission lanes ([`fnr_par::mpmc::Lanes`]) with
//!   backpressure and a zero-capacity hard-reject posture, drained by a
//!   clock-injected weighted-deficit scheduler ([`sched`]) with per-key
//!   fairness and deadline shedding,
//! * a [`Batcher`] that coalesces compatible requests — same
//!   scene/model/precision — into one batched render or one shared table
//!   regeneration (the per-batch format/precision amortization is exactly
//!   where the paper's adaptive datapath pays off per request),
//! * a supervised worker pool ([`supervise`]) driving `fnr_nerf`'s
//!   batched render entry points and registered `fnr_bench` table
//!   generators — panicking batches are bisected to isolate poisoned
//!   requests, crashed workers respawn within a bounded budget, and the
//!   [`fault`] module adds retries, a per-key circuit breaker, precision
//!   brownout under overload, and seeded chaos injection,
//! * per-request / per-batch metrics ([`ServeMetrics`], queue latency,
//!   service time, first-chunk latency, batch occupancy, failure/degrade
//!   counters) with a JSON report in the `flexnerfer-serve-bench/4`
//!   schema, sibling to `repro --json`'s `flexnerfer-repro-bench/2`.
//!
//! # Streaming
//!
//! A render request is split at admission into a fixed row-band partition
//! of [`effective_chunks`] sub-jobs ([`ChunkSpan`]), each flowing through
//! lanes, scheduler, batcher, and workers independently; chunk payloads
//! ([`chunk_image_bytes`]) concatenate in row order to exactly the
//! unchunked image bytes, so the whole-render digest is invariant in the
//! chunk count. `chunks = 1` is byte-for-byte the old one-shot path.
//!
//! # Determinism
//!
//! Response bytes are a pure function of each request, so the response
//! *set* is byte-identical at any `FNR_THREADS`, worker count, batch
//! composition, or chunk count; [`response_set_digest`] is
//! order-canonical over the set and is what CI diffs between its serial
//! and parallel legs (and between its chunked and unchunked legs). Timing
//! only moves metrics, never payloads.
//!
//! ```
//! use fnr_serve::{run, ServerConfig, Workload, RenderJob, SceneKind, RenderPrecision};
//!
//! let cfg = ServerConfig::default();
//! let (_ids, report) = run(&cfg, |client| {
//!     let id = client
//!         .submit(Workload::Render(RenderJob {
//!             scene: SceneKind::Mic,
//!             precision: RenderPrecision::Fp32,
//!             width: 4,
//!             height: 4,
//!             spp: 2,
//!             camera_seed: 7,
//!         }))
//!         .unwrap();
//!     client.wait(id).expect("answered")
//! });
//! assert_eq!(report.responses.len(), 1);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod cluster;
mod driver;
pub mod fault;
pub mod health;
mod metrics;
mod request;
pub mod router;
pub mod sched;
mod server;
pub mod supervise;
mod vclock;
pub mod workload;

pub use batch::{Batch, Batcher, BatcherConfig, FlushReason};
pub use cluster::{
    run_cluster, ClusterConfig, ClusterReport, ClusterService, FaultEvent, FaultKind, FaultPlan,
    PayloadMode,
};
pub use driver::{
    run_closed_loop, run_closed_loop_thinking, run_open_loop, run_virtual,
    run_virtual_with_faults, ThinkTime, VirtualService,
};
pub use fault::{
    degrade_precision, BreakerConfig, BreakerState, Brownout, BrownoutConfig, CircuitBreaker,
    FaultInjector, InjectedFault, RetryPolicy,
};
pub use health::{
    AdmissionConfig, CoDelAdmission, HealthConfig, HealthDetector, HealthState, HedgeConfig,
};
pub use metrics::{
    BatchMetric, ClusterMetrics, DegradeMetric, FailMetric, FrontDoorTotals, LaneAccounting,
    LaneStats, LatencyHistogram, NsStats, ReplicaStats, RequestMetric, RobustTotals, ServeMetrics,
    ShedMetric, LATENCY_BUCKETS, LATENCY_EDGES_NS,
};
pub use request::{
    assemble_chunks, chunk_image_bytes, effective_chunks, fnv1a, fnv1a_with, image_bytes,
    job_hash, response_set_digest, row_band, synthetic_chunk_payload, synthetic_payload, BatchKey,
    ChunkOutcome, ChunkResponse, ChunkSpan, RenderJob, RenderPrecision, Request, Response,
    SceneKind, Workload,
};
pub use router::{HashRing, RouterConfig, MAX_REPLICAS};
pub use sched::{LaneConfig, LaneScheduler, Priority, SchedConfig, SchedStep};
pub use server::{
    quantized_cache_stats, run, Client, QuantCacheStats, ServeReport, Server, ServerConfig,
    SubmitError, TableFn, TableRegistry, WaitOutcome,
};
pub use supervise::{SuperviseConfig, MAX_RESPAWN_BACKOFF};
