//! Batched render-request serving front-end for the FlexNeRFer
//! reproduction.
//!
//! The ROADMAP's north star is serving heavy render traffic; this crate is
//! the request-level runtime above the data-parallel substrate:
//!
//! * bounded per-class admission lanes ([`fnr_par::mpmc::Lanes`]) with
//!   backpressure and a zero-capacity hard-reject posture, drained by a
//!   clock-injected weighted-deficit scheduler ([`sched`]) with per-key
//!   fairness and deadline shedding,
//! * a [`Batcher`] that coalesces compatible requests — same
//!   scene/model/precision — into one batched render or one shared table
//!   regeneration (the per-batch format/precision amortization is exactly
//!   where the paper's adaptive datapath pays off per request),
//! * a worker pool driving `fnr_nerf`'s batched render entry points and
//!   registered `fnr_bench` table generators,
//! * per-request / per-batch metrics ([`ServeMetrics`], queue latency,
//!   service time, batch occupancy) with a JSON report in the
//!   `flexnerfer-serve-bench/1` schema, sibling to `repro --json`'s
//!   `flexnerfer-repro-bench/1`.
//!
//! # Determinism
//!
//! Response bytes are a pure function of each request, so the response
//! *set* is byte-identical at any `FNR_THREADS`, worker count, or batch
//! composition; [`response_set_digest`] is order-canonical over the set
//! and is what CI diffs between its serial and parallel legs. Timing only
//! moves metrics, never payloads.
//!
//! ```
//! use fnr_serve::{run, ServerConfig, Workload, RenderJob, SceneKind, RenderPrecision};
//!
//! let cfg = ServerConfig::default();
//! let (_ids, report) = run(&cfg, |client| {
//!     let id = client
//!         .submit(Workload::Render(RenderJob {
//!             scene: SceneKind::Mic,
//!             precision: RenderPrecision::Fp32,
//!             width: 4,
//!             height: 4,
//!             spp: 2,
//!             camera_seed: 7,
//!         }))
//!         .unwrap();
//!     client.wait(id).expect("answered")
//! });
//! assert_eq!(report.responses.len(), 1);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod cluster;
mod driver;
mod metrics;
mod request;
pub mod router;
pub mod sched;
mod server;
mod vclock;
pub mod workload;

pub use batch::{Batch, Batcher, BatcherConfig, FlushReason};
pub use cluster::{
    run_cluster, ClusterConfig, ClusterReport, ClusterService, FaultEvent, FaultKind, FaultPlan,
    PayloadMode,
};
pub use driver::{
    run_closed_loop, run_closed_loop_thinking, run_open_loop, run_virtual, ThinkTime,
    VirtualService,
};
pub use metrics::{
    BatchMetric, ClusterMetrics, LaneAccounting, LaneStats, LatencyHistogram, NsStats,
    ReplicaStats, RequestMetric, ServeMetrics, ShedMetric, LATENCY_BUCKETS, LATENCY_EDGES_NS,
};
pub use request::{
    fnv1a, image_bytes, response_set_digest, synthetic_payload, BatchKey, RenderJob,
    RenderPrecision, Request, Response, SceneKind, Workload,
};
pub use router::{HashRing, RouterConfig};
pub use sched::{LaneConfig, LaneScheduler, Priority, SchedConfig, SchedStep};
pub use server::{
    quantized_cache_stats, run, Client, QuantCacheStats, ServeReport, ServerConfig, SubmitError,
    TableFn, TableRegistry, WaitOutcome,
};
