//! Render-request model: what a client asks for, what the server answers,
//! and the digest that makes a whole run's response set comparable
//! byte-for-byte across thread widths and machines.

use std::fmt;
use std::time::Instant;

use fnr_nerf::camera::Camera;
use fnr_nerf::scene::{LegoScene, MicScene, PalaceScene, Scene};
use fnr_tensor::Precision;

/// Which stand-in dataset scene a render request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneKind {
    /// The simple mostly-empty scene (paper's *Mic*).
    Mic,
    /// The medium-complexity scene (paper's *Lego*).
    Lego,
    /// The complex scene (NSVF's *Palace*).
    Palace,
}

impl SceneKind {
    /// All scenes, in complexity order.
    pub const ALL: [SceneKind; 3] = [SceneKind::Mic, SceneKind::Lego, SceneKind::Palace];

    /// The analytic scene object.
    pub fn scene(self) -> &'static dyn Scene {
        match self {
            SceneKind::Mic => &MicScene,
            SceneKind::Lego => &LegoScene,
            SceneKind::Palace => &PalaceScene,
        }
    }

    /// Stable short name (batch keys, reports).
    pub fn name(self) -> &'static str {
        match self {
            SceneKind::Mic => "mic",
            SceneKind::Lego => "lego",
            SceneKind::Palace => "palace",
        }
    }

    /// Seed for the deterministic per-scene NGP model the quantized render
    /// path uses (untrained but fixed, so every batch of the same scene
    /// renders with identical weights).
    pub fn model_seed(self) -> u64 {
        match self {
            SceneKind::Mic => 101,
            SceneKind::Lego => 202,
            SceneKind::Palace => 303,
        }
    }
}

/// The numeric path a render request runs on: FP32 renders the analytic
/// reference scene; integer modes render the scene's NGP model through
/// the batched quantized path (weights quantized once per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderPrecision {
    /// FP32 reference render.
    Fp32,
    /// Quantized NGP render at an integer precision.
    Quantized(Precision),
}

impl RenderPrecision {
    /// Stable short name (batch keys, reports).
    pub fn name(self) -> &'static str {
        match self {
            RenderPrecision::Fp32 => "fp32",
            RenderPrecision::Quantized(Precision::Int4) => "int4",
            RenderPrecision::Quantized(Precision::Int8) => "int8",
            RenderPrecision::Quantized(Precision::Int16) => "int16",
            RenderPrecision::Quantized(Precision::Fp32) => "qfp32",
        }
    }
}

/// One render job: everything needed to produce the pixels, and nothing
/// that depends on when or where it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderJob {
    /// Scene to render.
    pub scene: SceneKind,
    /// Numeric path.
    pub precision: RenderPrecision,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Samples per ray.
    pub spp: usize,
    /// Seed deriving the orbit camera (angle/radius/height), so every job
    /// is a deterministic function of its fields.
    pub camera_seed: u64,
}

impl RenderJob {
    /// The deterministic orbit camera this job renders from.
    pub fn camera(&self) -> Camera {
        // Spread seeds over the orbit: angle over the full circle, radius
        // and height over small safe bands. SplitMix-style mixing keeps
        // nearby seeds uncorrelated.
        let mut z = self.camera_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ (z >> 31);
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let theta = (next() * std::f64::consts::TAU) as f32;
        let r = (1.4 + 0.4 * next()) as f32;
        let h = (0.7 + 0.4 * next()) as f32;
        Camera::orbit(theta, r, h)
    }
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Render one view (coalesced with same-scene/same-precision peers).
    Render(RenderJob),
    /// Regenerate a named repro table (coalesced by name: the generator
    /// runs once per batch and every member shares the bytes).
    Table(String),
}

/// The coalescing key: requests with equal keys may share one batched
/// invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BatchKey {
    /// Render batches coalesce on scene and precision; geometry and
    /// cameras may differ per member.
    Render(SceneKind, RenderPrecision),
    /// Table batches coalesce on the generator name.
    Table(String),
}

impl Workload {
    /// This workload's coalescing key.
    pub fn key(&self) -> BatchKey {
        match self {
            Workload::Render(j) => BatchKey::Render(j.scene, j.precision),
            Workload::Table(name) => BatchKey::Table(name.clone()),
        }
    }

    /// Whether this workload coalesces under `key` — equivalent to
    /// `self.key() == *key`, but without constructing (and for table
    /// jobs, cloning) a key. Hot scheduler loops compare this way.
    pub fn matches_key(&self, key: &BatchKey) -> bool {
        match (self, key) {
            (Workload::Render(j), BatchKey::Render(s, p)) => j.scene == *s && j.precision == *p,
            (Workload::Table(name), BatchKey::Table(t)) => name == t,
            _ => false,
        }
    }

    /// Whether two workloads share a coalescing key (the allocation-free
    /// form of `a.key() == b.key()`).
    pub fn same_key(&self, other: &Workload) -> bool {
        match (self, other) {
            (Workload::Render(a), Workload::Render(b)) => {
                a.scene == b.scene && a.precision == b.precision
            }
            (Workload::Table(a), Workload::Table(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for BatchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchKey::Render(s, p) => write!(f, "render/{}/{}", s.name(), p.name()),
            BatchKey::Table(name) => write!(f, "table/{name}"),
        }
    }
}

/// Position of one row-band chunk within its parent render: chunk
/// `index` of `of`. The partition is a pure function of the job (see
/// [`effective_chunks`] / [`row_band`]), so the split is byte-stable
/// across machines, thread widths, and live-vs-virtual execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkSpan {
    /// Zero-based chunk index within the parent request.
    pub index: u32,
    /// Total number of chunks the parent request was split into.
    pub of: u32,
}

impl ChunkSpan {
    /// The unchunked span: one chunk covering the whole response.
    pub const WHOLE: ChunkSpan = ChunkSpan { index: 0, of: 1 };

    /// Whether this span is the entire response (chunk 0 of 1).
    pub fn is_whole(self) -> bool {
        self == ChunkSpan::WHOLE
    }
}

/// How many chunks a job splits into under a configured chunk count `k`.
/// Tables never split (the generator runs once and every member shares
/// the bytes); renders split into at most one chunk per pixel row. A pure
/// function of `(k, job)`, so the partition is identical everywhere.
pub fn effective_chunks(k: usize, job: &Workload) -> u32 {
    match job {
        Workload::Table(_) => 1,
        Workload::Render(j) => k.max(1).min(j.height.max(1)) as u32,
    }
}

/// The row range `[row0, row0 + rows)` of chunk `index` in an `of`-way
/// split of a `height`-row image. Bands partition `[0, height)` exactly,
/// differ in size by at most one row, and depend only on the arguments.
pub fn row_band(height: usize, index: u32, of: u32) -> (usize, usize) {
    let of = of.max(1) as usize;
    let i = index as usize;
    let row0 = i * height / of;
    let end = (i + 1) * height / of;
    (row0, end - row0)
}

/// A request in flight: the id the server assigned at admission, its
/// traffic class and deadline, the clock-injected admission timestamp, and
/// the work itself.
#[derive(Debug, Clone)]
pub struct Request {
    /// Monotone admission id.
    pub id: u64,
    /// When the client's submit was accepted (real-clock metrics).
    pub submitted_at: Instant,
    /// Traffic class — selects the scheduler lane.
    pub priority: crate::sched::Priority,
    /// Admission time on the scheduler's clock (nanoseconds since the
    /// server epoch; virtual ticks under the trace harness).
    pub arrival_ns: u64,
    /// Absolute deadline on the same clock as [`Request::arrival_ns`]:
    /// service must *start* strictly before this instant or the scheduler
    /// sheds the request at dequeue. `None` never sheds.
    pub deadline_ns: Option<u64>,
    /// Which row-band chunk of the parent render this request carries.
    /// [`ChunkSpan::WHOLE`] for unchunked requests and tables.
    pub chunk: ChunkSpan,
    /// The work.
    pub job: Workload,
}

impl Request {
    /// Whether this request's deadline has passed at scheduler time
    /// `now_ns` (a request popped exactly at its deadline is expired).
    pub fn expired_at(&self, now_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| now_ns >= d)
    }
}

/// A completed request: the id plus the response payload. Render payloads
/// are `[width u32 LE][height u32 LE][pixels as f32 LE, RGB row-major]`;
/// table payloads are the rendered markdown bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Id of the request this answers.
    pub id: u64,
    /// Payload bytes (see type docs for the layout).
    pub bytes: Vec<u8>,
}

/// One completed chunk of a request: the parent id, the chunk's span,
/// and the chunk's slice of the payload. Concatenating a request's chunk
/// payloads in index order reproduces the unchunked [`Response`] bytes
/// exactly; the whole-render digest is the FNV fold of the chunk bytes
/// in that order (see [`fnv1a_with`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkResponse {
    /// Id of the parent request.
    pub id: u64,
    /// Which chunk of the parent this is.
    pub chunk: ChunkSpan,
    /// This chunk's slice of the payload bytes.
    pub bytes: Vec<u8>,
}

/// The terminal state of one chunk, observable while the rest of the
/// request is still in flight (see `Client::wait_chunk`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// The chunk completed; these are its payload bytes.
    Served(Vec<u8>),
    /// The chunk was shed (deadline expired before service started).
    Shed,
    /// The chunk failed terminally (quarantine, breaker, budget).
    Failed(String),
    /// The server shut down before the chunk resolved.
    Closed,
}

/// Serializes an image into the response payload layout.
pub fn image_bytes(img: &fnr_nerf::psnr::Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + img.pixels().len() * 12);
    out.extend_from_slice(&(img.width() as u32).to_le_bytes());
    out.extend_from_slice(&(img.height() as u32).to_le_bytes());
    for px in img.pixels() {
        for c in px {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// Serializes one rendered row band into its chunk payload slice. `img`
/// holds only the band's rows; `full_height` is the parent frame height.
/// Chunk 0 carries the 8-byte `[width][height]` header (with the *full*
/// frame height) so the stream is self-describing from the first chunk;
/// later chunks carry bare pixel rows. Concatenating all chunks in index
/// order is byte-identical to [`image_bytes`] of the full frame.
pub fn chunk_image_bytes(img: &fnr_nerf::psnr::Image, full_height: usize, chunk: ChunkSpan) -> Vec<u8> {
    let header = if chunk.index == 0 { 8 } else { 0 };
    let mut out = Vec::with_capacity(header + img.pixels().len() * 12);
    if chunk.index == 0 {
        out.extend_from_slice(&(img.width() as u32).to_le_bytes());
        out.extend_from_slice(&(full_height as u32).to_le_bytes());
    }
    for px in img.pixels() {
        for c in px {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// A small deterministic stand-in payload for cluster-scale simulation:
/// a pure function of the job (like the real render, just 16 bytes of
/// hash instead of pixels), so million-request runs keep the exact
/// digest-equivalence contract without rendering a million images.
/// Distinct jobs get distinct payloads with overwhelming probability;
/// identical jobs always get identical bytes.
pub fn synthetic_payload(job: &Workload) -> Vec<u8> {
    let h = job_hash(job);
    // SplitMix finalize for a second uncorrelated word.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&h.to_le_bytes());
    out.extend_from_slice(&z.to_le_bytes());
    out
}

/// The chunked form of [`synthetic_payload`]: chunk 0 carries the whole
/// 16-byte stand-in payload, later chunks are empty (empty slices leave
/// the FNV fold unchanged), so concatenation in index order reproduces
/// the unchunked bytes at any chunk count.
pub fn synthetic_chunk_payload(job: &Workload, chunk: ChunkSpan) -> Vec<u8> {
    if chunk.index == 0 { synthetic_payload(job) } else { Vec::new() }
}

/// Reassembles completed chunks into whole [`Response`]s: chunks are
/// sorted by `(id, chunk index)`, grouped by parent id, and a parent
/// whose every chunk arrived (count equals the span's `of`) concatenates
/// to one response in row order. Parents missing any chunk (shed, failed,
/// or still owned by a dead replica) are dropped — a partial render is
/// not a response. Output is in ascending id order.
pub fn assemble_chunks(mut chunks: Vec<ChunkResponse>) -> Vec<Response> {
    chunks.sort_unstable_by_key(|c| (c.id, c.chunk.index));
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chunks.len() {
        let id = chunks[i].id;
        let of = chunks[i].chunk.of as usize;
        let mut j = i;
        while j < chunks.len() && chunks[j].id == id {
            j += 1;
        }
        if j - i == of {
            let mut bytes = Vec::new();
            for c in &chunks[i..j] {
                bytes.extend_from_slice(&c.bytes);
            }
            out.push(Response { id, bytes });
        }
        i = j;
    }
    out
}

/// Identity hash of a workload: FNV-1a over the coalescing key plus (for
/// renders) the per-request geometry and camera seed — a pure function of
/// the job, shared by [`synthetic_payload`] and the fault injector so the
/// chaos-poisoned set is mode- and timing-independent.
pub fn job_hash(job: &Workload) -> u64 {
    let mut h = fnv1a(job.key().to_string().as_bytes());
    if let Workload::Render(j) = job {
        for field in [j.width as u64, j.height as u64, j.spp as u64, j.camera_seed] {
            for b in field.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a fold from a prior state. Because FNV-1a is a byte
/// fold, hashing a payload in pieces reproduces the one-shot hash:
/// `fnv1a_with(fnv1a(a), b) == fnv1a(a ++ b)`. This is the whole-render
/// digest contract — folding a request's chunk payloads in row order
/// yields the same hash as the unchunked response bytes, at any chunk
/// count.
pub fn fnv1a_with(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Order-canonical digest of a response set: hash each payload, sort the
/// hashes, then hash the sorted sequence. Independent of request-id
/// assignment order, so open- and closed-loop drivers of the same job set
/// produce the same digest — and any `FNR_THREADS`/worker-count setting
/// must too (the serve equivalence suite enforces it).
pub fn response_set_digest(responses: &[Response]) -> u64 {
    let mut hashes: Vec<u64> = responses.iter().map(|r| fnv1a(&r.bytes)).collect();
    hashes.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in hashes {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cameras_are_deterministic_and_seed_sensitive() {
        let job = |seed| RenderJob {
            scene: SceneKind::Mic,
            precision: RenderPrecision::Fp32,
            width: 8,
            height: 8,
            spp: 4,
            camera_seed: seed,
        };
        let a = job(1).camera();
        let b = job(1).camera();
        let c = job(2).camera();
        assert_eq!(a.position(), b.position(), "same seed, same camera");
        assert_ne!(a.position(), c.position(), "different seed, different camera");
    }

    #[test]
    fn batch_keys_ignore_geometry_but_not_precision() {
        let mk = |w, p| {
            Workload::Render(RenderJob {
                scene: SceneKind::Lego,
                precision: p,
                width: w,
                height: 8,
                spp: 4,
                camera_seed: 0,
            })
        };
        assert_eq!(mk(8, RenderPrecision::Fp32).key(), mk(16, RenderPrecision::Fp32).key());
        assert_ne!(
            mk(8, RenderPrecision::Fp32).key(),
            mk(8, RenderPrecision::Quantized(Precision::Int8)).key()
        );
        assert_eq!(
            Workload::Table("t1".into()).key(),
            Workload::Table("t1".into()).key()
        );
    }

    #[test]
    fn synthetic_payloads_are_pure_and_job_sensitive() {
        let job = |seed| {
            Workload::Render(RenderJob {
                scene: SceneKind::Mic,
                precision: RenderPrecision::Fp32,
                width: 8,
                height: 8,
                spp: 4,
                camera_seed: seed,
            })
        };
        assert_eq!(synthetic_payload(&job(1)), synthetic_payload(&job(1)));
        assert_ne!(synthetic_payload(&job(1)), synthetic_payload(&job(2)));
        assert_ne!(
            synthetic_payload(&Workload::Table("a".into())),
            synthetic_payload(&Workload::Table("b".into()))
        );
        assert_eq!(synthetic_payload(&job(7)).len(), 16);
    }

    #[test]
    fn digest_is_order_canonical() {
        let a = Response { id: 0, bytes: vec![1, 2, 3] };
        let b = Response { id: 1, bytes: vec![4, 5] };
        let d1 = response_set_digest(&[a.clone(), b.clone()]);
        let d2 = response_set_digest(&[b, a]);
        assert_eq!(d1, d2);
    }

    #[test]
    fn image_bytes_roundtrip_header() {
        let img = fnr_nerf::psnr::Image::new(3, 2);
        let bytes = image_bytes(&img);
        assert_eq!(bytes.len(), 8 + 3 * 2 * 12);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
    }

    #[test]
    fn fnv1a_fold_reproduces_one_shot_hash() {
        let payload: Vec<u8> = (0u16..997).map(|x| (x % 251) as u8).collect();
        for split in [0, 1, 13, 500, 996, 997] {
            let (a, b) = payload.split_at(split);
            assert_eq!(fnv1a_with(fnv1a(a), b), fnv1a(&payload), "split at {split}");
        }
        // Three-way fold, including an empty middle piece.
        let h = fnv1a_with(fnv1a_with(fnv1a(&payload[..100]), &[]), &payload[100..]);
        assert_eq!(h, fnv1a(&payload));
    }

    #[test]
    fn row_bands_partition_exactly() {
        for height in [0usize, 1, 2, 5, 7, 12, 13, 64] {
            for of in [1u32, 2, 3, 7, 16] {
                let mut next = 0usize;
                let mut total = 0usize;
                for i in 0..of {
                    let (row0, rows) = row_band(height, i, of);
                    assert_eq!(row0, next, "bands contiguous (h={height} of={of} i={i})");
                    next = row0 + rows;
                    total += rows;
                }
                assert_eq!(total, height, "bands cover [0, h) (h={height} of={of})");
            }
        }
    }

    #[test]
    fn effective_chunks_caps_at_height_and_skips_tables() {
        let render = |h| {
            Workload::Render(RenderJob {
                scene: SceneKind::Mic,
                precision: RenderPrecision::Fp32,
                width: 4,
                height: h,
                spp: 2,
                camera_seed: 0,
            })
        };
        assert_eq!(effective_chunks(1, &render(8)), 1);
        assert_eq!(effective_chunks(4, &render(8)), 4);
        assert_eq!(effective_chunks(16, &render(8)), 8, "at most one chunk per row");
        assert_eq!(effective_chunks(0, &render(8)), 1, "zero is clamped to one");
        assert_eq!(effective_chunks(4, &render(0)), 1, "empty frames stay whole");
        assert_eq!(effective_chunks(8, &Workload::Table("t".into())), 1);
    }

    #[test]
    fn chunk_payload_concat_matches_unchunked_image_bytes() {
        let mut img = fnr_nerf::psnr::Image::new(3, 7);
        for (i, px) in img.pixels_mut().iter_mut().enumerate() {
            *px = [i as f32, (i * 2) as f32, -(i as f32)];
        }
        let whole = image_bytes(&img);
        for of in [1u32, 2, 3, 7] {
            let mut concat = Vec::new();
            let mut folded = 0xcbf2_9ce4_8422_2325u64;
            for index in 0..of {
                let (row0, rows) = row_band(7, index, of);
                let mut band = fnr_nerf::psnr::Image::new(3, rows);
                for yy in 0..rows {
                    for x in 0..3 {
                        band.pixels_mut()[yy * 3 + x] = img.pixels()[(row0 + yy) * 3 + x];
                    }
                }
                let bytes = chunk_image_bytes(&band, 7, ChunkSpan { index, of });
                folded = fnv1a_with(folded, &bytes);
                concat.extend_from_slice(&bytes);
            }
            assert_eq!(concat, whole, "concat of {of} chunks == unchunked bytes");
            assert_eq!(folded, fnv1a(&whole), "chunk-digest fold == one-shot digest");
        }
    }

    #[test]
    fn assemble_drops_incomplete_parents_and_concats_in_row_order() {
        let chunk = |id, index, of, bytes: &[u8]| ChunkResponse {
            id,
            chunk: ChunkSpan { index, of },
            bytes: bytes.to_vec(),
        };
        // Parent 5 complete (out of order), parent 9 missing chunk 1 of 2,
        // parent 2 whole.
        let assembled = assemble_chunks(vec![
            chunk(5, 2, 3, b"c"),
            chunk(9, 0, 2, b"x"),
            chunk(5, 0, 3, b"a"),
            chunk(2, 0, 1, b"solo"),
            chunk(5, 1, 3, b"b"),
        ]);
        assert_eq!(assembled.len(), 2);
        assert_eq!(assembled[0], Response { id: 2, bytes: b"solo".to_vec() });
        assert_eq!(assembled[1], Response { id: 5, bytes: b"abc".to_vec() });
    }

    #[test]
    fn synthetic_chunks_concat_to_unchunked_payload() {
        let job = Workload::Table("t".into());
        let whole = synthetic_payload(&job);
        let mut concat = Vec::new();
        for index in 0..3u32 {
            concat.extend(synthetic_chunk_payload(&job, ChunkSpan { index, of: 3 }));
        }
        assert_eq!(concat, whole);
        assert_eq!(synthetic_chunk_payload(&job, ChunkSpan::WHOLE), whole);
    }
}
