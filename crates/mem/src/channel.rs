use crate::MemTraffic;
use fnr_hw::{DramSpec, EnergyPj};

/// One DRAM channel with bandwidth-conserving transfer accounting.
///
/// Transfers are serialized on the channel: each request starts no earlier
/// than the completion of the previous one, so concurrent requesters see
/// realistic queueing rather than ideal parallel bandwidth.
#[derive(Debug, Clone)]
pub struct DramChannel {
    spec: DramSpec,
    clock_hz: f64,
    busy_until: u64,
    traffic: MemTraffic,
}

impl DramChannel {
    /// Creates a channel on a consumer clock of `clock_hz`.
    pub fn new(spec: DramSpec, clock_hz: f64) -> Self {
        DramChannel { spec, clock_hz, busy_until: 0, traffic: MemTraffic::default() }
    }

    /// The underlying DRAM spec.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Issues a read of `bytes` at cycle `now`; returns the completion
    /// cycle.
    pub fn read(&mut self, now: u64, bytes: u64) -> u64 {
        self.traffic.dram_read_bytes += bytes;
        self.transfer(now, bytes)
    }

    /// Issues a write of `bytes` at cycle `now`; returns the completion
    /// cycle.
    pub fn write(&mut self, now: u64, bytes: u64) -> u64 {
        self.traffic.dram_write_bytes += bytes;
        self.transfer(now, bytes)
    }

    fn transfer(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.busy_until);
        let cycles = self.spec.transfer_cycles(bytes, self.clock_hz);
        self.busy_until = start + cycles;
        self.busy_until
    }

    /// Cycle at which the channel becomes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Accumulated traffic.
    pub fn traffic(&self) -> &MemTraffic {
        &self.traffic
    }

    /// Energy of all traffic so far.
    pub fn energy(&self) -> EnergyPj {
        self.spec.transfer_energy(self.traffic.dram_total())
    }

    /// Resets queue state and counters.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.traffic = MemTraffic::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DramChannel {
        DramChannel::new(DramSpec::LPDDR3_1600_X64, 800.0e6)
    }

    #[test]
    fn transfers_serialize() {
        let mut ch = channel();
        let t1 = ch.read(0, 16_000); // ~1000 cycles at 16 B/cycle + latency
        let t2 = ch.read(0, 16_000);
        assert!(t2 > t1, "second transfer queues behind the first");
        assert!(t2 >= 2 * t1 - 100);
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = channel();
        let t1 = ch.read(0, 1600);
        let t2 = ch.read(t1 + 500, 1600);
        assert_eq!(t2 - (t1 + 500), t1, "same-size transfer takes the same time when idle");
    }

    #[test]
    fn traffic_and_energy_accumulate() {
        let mut ch = channel();
        ch.read(0, 1000);
        ch.write(0, 500);
        assert_eq!(ch.traffic().dram_total(), 1500);
        assert!((ch.energy().0 - 1500.0 * 42.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use fnr_hw::DramSpec;

    #[test]
    fn reset_clears_queue_and_counters() {
        let mut ch = DramChannel::new(DramSpec::LPDDR3_1600_X64, 800.0e6);
        ch.read(0, 10_000);
        ch.reset();
        assert_eq!(ch.busy_until(), 0);
        assert_eq!(ch.traffic().dram_total(), 0);
        assert_eq!(ch.energy().0, 0.0);
    }

    #[test]
    fn zero_byte_transfer_still_pays_latency() {
        let mut ch = DramChannel::new(DramSpec::LPDDR3_1600_X64, 800.0e6);
        let t = ch.read(0, 0);
        // 55 ns latency at 800 MHz = 44 cycles.
        assert!((40..=50).contains(&t), "latency cycles {t}");
    }

    #[test]
    fn gddr6_is_much_faster_per_transfer() {
        let mut lp = DramChannel::new(DramSpec::LPDDR3_1600_X64, 800.0e6);
        let mut gd = DramChannel::new(DramSpec::GDDR6_2080TI, 800.0e6);
        let t_lp = lp.read(0, 1 << 20);
        let t_gd = gd.read(0, 1 << 20);
        assert!(t_lp > t_gd * 10, "{t_lp} vs {t_gd}");
    }
}
