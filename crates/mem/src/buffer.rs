use fnr_hw::{Ppa, SramMacro};

/// Static configuration of one on-chip buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferConfig {
    /// Human-readable name ("I Buffer", "W Buffer", …).
    pub name: &'static str,
    /// Capacity in KiB.
    pub kbytes: f64,
    /// Port width in bits.
    pub width_bits: usize,
}

impl BufferConfig {
    /// FlexNeRFer's 2 MiB input buffer (Fig. 14).
    pub const INPUT_2MB: BufferConfig =
        BufferConfig { name: "I Buffer", kbytes: 2048.0, width_bits: 512 };
    /// FlexNeRFer's 2 MiB output buffer.
    pub const OUTPUT_2MB: BufferConfig =
        BufferConfig { name: "O Buffer", kbytes: 2048.0, width_bits: 512 };
    /// FlexNeRFer's 512 KiB weight buffer.
    pub const WEIGHT_512KB: BufferConfig =
        BufferConfig { name: "W Buffer", kbytes: 512.0, width_bits: 512 };
    /// FlexNeRFer's 512 KiB encoding buffer.
    pub const ENCODING_512KB: BufferConfig =
        BufferConfig { name: "Encoding Buffer", kbytes: 512.0, width_bits: 256 };

    /// The SRAM macro realizing this buffer.
    pub fn macro_model(&self) -> SramMacro {
        SramMacro::new(self.kbytes, self.width_bits)
    }

    /// Static area/power of the buffer.
    pub fn ppa(&self) -> Ppa {
        self.macro_model().ppa()
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        (self.kbytes * 1024.0) as u64
    }
}

/// A double-buffered (ping-pong) on-chip buffer.
///
/// While the compute side drains one half, the DMA side fills the other;
/// a tile switch succeeds only when the incoming fill has completed. This
/// is the mechanism that lets the cycle model overlap DRAM transfers with
/// computation (`max(compute, memory)` per tile instead of the sum).
///
/// # Example
///
/// ```
/// use fnr_mem::{BufferConfig, DoubleBuffer};
///
/// let mut buf = DoubleBuffer::new(BufferConfig::WEIGHT_512KB);
/// buf.begin_fill(0, 4096, 50);   // DMA fills the shadow half
/// let t = buf.swap(80);          // compute finished at cycle 80
/// assert_eq!(t, 80, "the 50-cycle fill hid under compute");
/// ```
#[derive(Debug, Clone)]
pub struct DoubleBuffer {
    config: BufferConfig,
    /// Fill completion cycle of the pending (filling) half, if any.
    pending_ready_at: Option<u64>,
    /// Whether the active half currently holds valid data.
    active_valid: bool,
    /// Read/write byte counters.
    reads: u64,
    writes: u64,
}

impl DoubleBuffer {
    /// Creates an empty double buffer.
    pub fn new(config: BufferConfig) -> Self {
        DoubleBuffer { config, pending_ready_at: None, active_valid: false, reads: 0, writes: 0 }
    }

    /// Buffer configuration.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Usable capacity of one half in bytes.
    pub fn half_bytes(&self) -> u64 {
        self.config.bytes() / 2
    }

    /// Starts filling the inactive half with `bytes`, completing at
    /// `now + fill_cycles`. Returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if a fill is already pending or `bytes` exceeds half the
    /// capacity.
    pub fn begin_fill(&mut self, now: u64, bytes: u64, fill_cycles: u64) -> u64 {
        assert!(self.pending_ready_at.is_none(), "a fill is already in flight");
        assert!(
            bytes <= self.half_bytes(),
            "{} bytes exceed half capacity {}",
            bytes,
            self.half_bytes()
        );
        let ready = now + fill_cycles;
        self.pending_ready_at = Some(ready);
        self.writes += bytes;
        ready
    }

    /// Swaps halves at cycle `now`; returns the cycle at which the swap
    /// actually happens (stalls until the pending fill completes).
    ///
    /// # Panics
    ///
    /// Panics if no fill was started.
    pub fn swap(&mut self, now: u64) -> u64 {
        let ready = self.pending_ready_at.take().expect("no fill in flight");
        self.active_valid = true;
        now.max(ready)
    }

    /// Whether the active half holds valid data.
    pub fn is_ready(&self) -> bool {
        self.active_valid
    }

    /// Records `bytes` read by the compute side.
    pub fn record_read(&mut self, bytes: u64) {
        self.reads += bytes;
    }

    /// Total bytes written (fills).
    pub fn bytes_written(&self) -> u64 {
        self.writes
    }

    /// Total bytes read (drains).
    pub fn bytes_read(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_buffer_sizes() {
        assert_eq!(BufferConfig::INPUT_2MB.bytes(), 2 * 1024 * 1024);
        assert_eq!(BufferConfig::WEIGHT_512KB.bytes(), 512 * 1024);
    }

    #[test]
    fn fill_then_swap_overlaps() {
        let mut b = DoubleBuffer::new(BufferConfig::WEIGHT_512KB);
        b.begin_fill(0, 1000, 50);
        // Compute takes 80 cycles; fill (50) hides under it.
        let t = b.swap(80);
        assert_eq!(t, 80);
        // Next fill is slower than compute: swap stalls.
        b.begin_fill(t, 1000, 200);
        let t2 = b.swap(t + 100);
        assert_eq!(t2, 280);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_fill_panics() {
        let mut b = DoubleBuffer::new(BufferConfig::WEIGHT_512KB);
        b.begin_fill(0, 10, 5);
        b.begin_fill(0, 10, 5);
    }

    #[test]
    #[should_panic(expected = "exceed half capacity")]
    fn oversized_fill_panics() {
        let mut b = DoubleBuffer::new(BufferConfig::WEIGHT_512KB);
        b.begin_fill(0, 512 * 1024, 5);
    }

    #[test]
    fn counters_accumulate() {
        let mut b = DoubleBuffer::new(BufferConfig::INPUT_2MB);
        b.begin_fill(0, 100, 1);
        b.swap(10);
        b.record_read(40);
        b.record_read(60);
        assert_eq!(b.bytes_written(), 100);
        assert_eq!(b.bytes_read(), 100);
        assert!(b.is_ready());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn half_capacity_is_half_of_config() {
        let b = DoubleBuffer::new(BufferConfig::INPUT_2MB);
        assert_eq!(b.half_bytes(), 1024 * 1024);
    }

    #[test]
    fn back_to_back_fills_pipeline() {
        // Three tiles, fill time < compute time: every swap is free.
        let mut b = DoubleBuffer::new(BufferConfig::OUTPUT_2MB);
        let mut now = 0;
        for _ in 0..3 {
            b.begin_fill(now, 4096, 10);
            now += 100; // compute
            now = b.swap(now);
        }
        assert_eq!(now, 300, "fills fully hidden under compute");
    }

    #[test]
    fn not_ready_until_first_swap() {
        let mut b = DoubleBuffer::new(BufferConfig::ENCODING_512KB);
        assert!(!b.is_ready());
        b.begin_fill(0, 16, 1);
        assert!(!b.is_ready(), "fill in flight is not yet visible");
        b.swap(5);
        assert!(b.is_ready());
    }

    #[test]
    fn macro_model_matches_config() {
        let c = BufferConfig::WEIGHT_512KB;
        assert_eq!(c.macro_model().kbytes(), 512.0);
        assert_eq!(c.macro_model().width_bits(), 512);
        assert!(c.ppa().area.mm2() > 0.1);
    }
}
