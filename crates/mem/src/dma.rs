use crate::channel::DramChannel;

/// One DMA descriptor: move `bytes` between host memory and local DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRequest {
    /// Bytes to move.
    pub bytes: u64,
    /// Direction: `true` = host → local DRAM (load), `false` = store.
    pub to_local: bool,
}

/// The DMA engine of Fig. 14: streams descriptors over the local DRAM
/// channel (the host link is assumed to at least match local bandwidth, as
/// in the paper's system where the accelerator hangs off a host SoC).
#[derive(Debug, Clone)]
pub struct DmaEngine {
    issued: Vec<DmaRequest>,
}

impl DmaEngine {
    /// Creates an idle DMA engine.
    pub fn new() -> Self {
        DmaEngine { issued: Vec::new() }
    }

    /// Executes a batch of descriptors starting at `now`, returning the
    /// completion cycle.
    pub fn run(&mut self, now: u64, requests: &[DmaRequest], channel: &mut DramChannel) -> u64 {
        let mut t = now;
        for &req in requests {
            t = if req.to_local { channel.write(t, req.bytes) } else { channel.read(t, req.bytes) };
            self.issued.push(req);
        }
        t
    }

    /// Descriptors executed so far.
    pub fn issued(&self) -> &[DmaRequest] {
        &self.issued
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.issued.iter().map(|r| r.bytes).sum()
    }
}

impl Default for DmaEngine {
    fn default() -> Self {
        DmaEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnr_hw::DramSpec;

    #[test]
    fn runs_descriptors_in_order() {
        let mut ch = DramChannel::new(DramSpec::LPDDR3_1600_X64, 800.0e6);
        let mut dma = DmaEngine::new();
        let done = dma.run(
            0,
            &[DmaRequest { bytes: 4096, to_local: true }, DmaRequest { bytes: 4096, to_local: false }],
            &mut ch,
        );
        assert!(done > 0);
        assert_eq!(dma.total_bytes(), 8192);
        assert_eq!(ch.traffic().dram_write_bytes, 4096);
        assert_eq!(ch.traffic().dram_read_bytes, 4096);
    }
}
