//! Memory-hierarchy substrate for the FlexNeRFer reproduction.
//!
//! Models the on-chip buffers of Fig. 14 (2 MiB input, 2 MiB output,
//! 512 KiB weight, 512 KiB encoding buffers), the DMA engine between host
//! and local DRAM, and the local LPDDR3 DRAM channel, with byte-accurate
//! traffic accounting that feeds the energy model.

#![warn(missing_docs)]

mod buffer;
mod channel;
mod dma;

pub use buffer::{BufferConfig, DoubleBuffer};
pub use channel::DramChannel;
pub use dma::{DmaEngine, DmaRequest};

/// Byte-level traffic accumulated across a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes read from on-chip SRAM buffers.
    pub sram_read_bytes: u64,
    /// Bytes written to on-chip SRAM buffers.
    pub sram_write_bytes: u64,
}

impl MemTraffic {
    /// Sums two traffic reports.
    pub fn merge(&self, other: &MemTraffic) -> MemTraffic {
        MemTraffic {
            dram_read_bytes: self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + other.dram_write_bytes,
            sram_read_bytes: self.sram_read_bytes + other.sram_read_bytes,
            sram_write_bytes: self.sram_write_bytes + other.sram_write_bytes,
        }
    }

    /// Total DRAM bytes in both directions.
    pub fn dram_total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_merges() {
        let a = MemTraffic { dram_read_bytes: 1, dram_write_bytes: 2, sram_read_bytes: 3, sram_write_bytes: 4 };
        let m = a.merge(&a);
        assert_eq!(m.dram_total(), 6);
        assert_eq!(m.sram_read_bytes, 6);
    }
}
