//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! Offline build environments cannot fetch the real crate, so this shim
//! provides the API surface the `fnr_bench` targets use — benchmark
//! groups, `sample_size`, `bench_function`, `Bencher::iter`, `black_box`
//! and the `criterion_group!`/`criterion_main!` macros — with a
//! calibrated warm-up + median/MAD timer instead of criterion's full
//! statistics.
//!
//! Each benchmark prints one line, always in nanoseconds:
//!
//! ```text
//! name        median 123456 ns   mad 789 ns   (20 samples x 1024 iters)
//! ```
//!
//! The MAD (median absolute deviation from the median) is the robust
//! spread estimate: a noisy neighbour inflates it instead of silently
//! skewing a mean. Sample counts come from `sample_size`/the per-call
//! default, and can be overridden globally with the `FNR_BENCH_SAMPLES`
//! environment variable (useful for quick CI smoke runs vs long local
//! measurement sessions).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup { _c: self, sample_size: 20 }
    }

    /// Times a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 20, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Timer handle given to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Global sample-count override, `FNR_BENCH_SAMPLES` (≥ 1 to take effect).
fn env_samples() -> Option<usize> {
    std::env::var("FNR_BENCH_SAMPLES").ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Median of a sorted sample vector.
fn median_ns(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

/// Median absolute deviation from `median` (robust spread estimate).
fn mad_ns(samples: &[u64], median: u64) -> u64 {
    let mut devs: Vec<u64> = samples.iter().map(|&s| s.abs_diff(median)).collect();
    devs.sort_unstable();
    median_ns(&devs)
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let samples = env_samples().unwrap_or(samples).max(1);

    // Calibrate the per-sample iteration count towards ~2 ms per sample so
    // fast kernels get enough iterations for a stable median while slow
    // table generators stay at 1 iteration.
    let mut probe = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Warm-up: settle caches, branch predictors and CPU frequency before
    // the timed samples. Benchmarks whose single iteration already exceeds
    // the warm-up budget skip it — the calibration probe was their warm-up.
    const WARMUP: Duration = Duration::from_millis(6);
    if per_iter < WARMUP {
        let deadline = Instant::now() + WARMUP;
        while Instant::now() < deadline {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
        }
    }

    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        times.push((b.elapsed.as_nanos() / iters as u128) as u64);
    }
    times.sort_unstable();
    let median = median_ns(&times);
    let mad = mad_ns(&times, median);
    println!(
        "{name:<44} median {median:>12} ns   mad {mad:>9} ns   ({samples} samples x {iters} iters)"
    );
}

/// Bundles bench functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_function() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("counts", |b| {
            ran += 1;
            b.iter(|| black_box(2u64 + 2))
        });
        g.finish();
        assert!(ran >= 3, "closure runs once per sample plus calibration");
    }

    criterion_group!(demo_group, demo_bench);
    fn demo_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }

    #[test]
    fn median_and_mad_are_robust() {
        // One wild outlier must not move either statistic much.
        let mut samples = vec![100u64, 101, 99, 100, 102, 98, 100, 5000];
        samples.sort_unstable();
        let med = median_ns(&samples);
        assert!((98..=102).contains(&med), "median {med}");
        let mad = mad_ns(&samples, med);
        assert!(mad <= 2, "mad {mad}");
    }

    #[test]
    fn mad_of_constant_samples_is_zero() {
        let samples = vec![7u64; 9];
        assert_eq!(mad_ns(&samples, median_ns(&samples)), 0);
    }
}
