//! Minimal, dependency-free stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` surface the repo
//! actually uses: [`Rng::gen_range`] over half-open and inclusive ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::shuffle`]. All generators are deterministic
//! given a seed (SplitMix64 core), which is exactly what the seeded test
//! and workload-generation code relies on.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state is derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits onto a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits onto a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Panics when `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-128..=127);
            assert!((-128..=127).contains(&v));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
