//! Minimal, dependency-light stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property suites use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range strategies (`0u64..1000`, `-128i32..=127`, `0.0f64..1.0`), a
//! [`collection::vec`] strategy, [`ProptestConfig::with_cases`] and the
//! `prop_assert*` macros.
//!
//! # Shrinking
//!
//! Like real proptest, a failing case is **shrunk** before being
//! reported: scalar strategies binary-search from the failing value
//! toward the range's origin (its start), and collection strategies
//! shrink by prefix truncation, until no smaller input still fails (or
//! [`ProptestConfig::max_shrink_iters`] attempts are spent). The panic
//! message reports the *minimal* failing input, e.g.
//! `minimal failing input: x = 500`. Every strategy is
//! seed-deterministic, so both the original failure and the shrink are
//! exactly reproducible.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::cell::Cell;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod collection;

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
    /// Ceiling on shrink attempts once a case fails (attempts, not
    /// accepted steps, so pathological properties cannot loop).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; keep the same ceiling so
        // suites that omit a config stay within the tier-1 time budget.
        ProptestConfig { cases: 256, max_shrink_iters: 4096 }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The value type produced.
    type Value: Clone + Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Ordered shrink candidates for a failing value — strictly "smaller"
    /// inputs, most aggressive first. The runner greedily accepts the
    /// first candidate that still fails and re-shrinks from there; an
    /// empty list means `failing` is locally minimal.
    fn shrink(&self, failing: &Self::Value) -> Vec<Self::Value> {
        let _ = failing;
        Vec::new()
    }
}

/// Scalar types the range strategies can binary-search toward an origin.
pub trait Shrinkable: Copy + PartialEq {
    /// Candidates between `origin` and `failing`, most aggressive first: a
    /// geometric ladder `origin, failing − span/2, failing − span/4, …,
    /// failing − 1`. The runner accepts the *first* candidate that still
    /// fails, so each accepted step lands just past the failure boundary
    /// from above and re-ladders — true bisection, converging in
    /// O(log² span) attempts rather than a linear walk, with the
    /// predecessor entry guaranteeing the reported integer minimum is
    /// exact.
    fn shrink_toward(origin: Self, failing: Self) -> Vec<Self>;
}

macro_rules! impl_shrinkable_int {
    ($($t:ty),*) => {$(
        impl Shrinkable for $t {
            fn shrink_toward(origin: Self, failing: Self) -> Vec<Self> {
                if failing == origin {
                    return Vec::new();
                }
                let mut out = vec![origin];
                let span = failing as i128 - origin as i128;
                for k in 1..128u32 {
                    let delta = span / (1i128 << k);
                    if delta == 0 {
                        break;
                    }
                    let cand = (failing as i128 - delta) as $t;
                    if cand != origin && cand != failing && out.last() != Some(&cand) {
                        out.push(cand);
                    }
                }
                let step = if failing > origin { failing - 1 } else { failing + 1 };
                if step != origin && out.last() != Some(&step) {
                    out.push(step);
                }
                out
            }
        }
    )*};
}

impl_shrinkable_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_shrinkable_float {
    ($($t:ty),*) => {$(
        impl Shrinkable for $t {
            fn shrink_toward(origin: Self, failing: Self) -> Vec<Self> {
                if failing == origin {
                    return Vec::new();
                }
                let mut out = vec![origin];
                let span = failing - origin;
                let mut divisor: $t = 2.0;
                for _ in 0..64 {
                    let cand = failing - span / divisor;
                    if cand == failing || !cand.is_finite() {
                        break;
                    }
                    if cand != origin && out.last() != Some(&cand) {
                        out.push(cand);
                    }
                    divisor *= 2.0;
                }
                out
            }
        }
    )*};
}

impl_shrinkable_float!(f32, f64);

impl<T: SampleUniform + Shrinkable + Debug> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, failing: &T) -> Vec<T> {
        T::shrink_toward(self.start, *failing)
    }
}

impl<T: SampleUniform + Shrinkable + Debug> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, failing: &T) -> Vec<T> {
        T::shrink_toward(*self.start(), *failing)
    }
}

/// Fixed per-case RNG used by the [`proptest!`] expansion. Mixing the case
/// index through a multiplicative hash decorrelates consecutive cases.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64((case as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// A tuple of strategies, one per property argument. Implemented for
/// arities 1–8; the [`proptest!`] macro drives properties through it.
pub trait StrategyTuple {
    /// Tuple of the component value types.
    type Value: Clone;

    /// Samples every component.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// All single-component shrink candidates of `failing`, in component
    /// order (component 0's candidates first).
    fn component_candidates(&self, failing: &Self::Value) -> Vec<Self::Value>;

    /// Renders `v` as `name = value, …` for failure reports.
    fn display(&self, names: &[&str], v: &Self::Value) -> String;
}

macro_rules! impl_strategy_tuple {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> StrategyTuple for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn component_candidates(&self, failing: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&failing.$idx) {
                        let mut next = failing.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }

            fn display(&self, names: &[&str], v: &Self::Value) -> String {
                let parts: Vec<String> = vec![$(format!("{} = {:?}", names[$idx], v.$idx)),+];
                parts.join(", ")
            }
        }
    };
}

impl_strategy_tuple!((S0, 0));
impl_strategy_tuple!((S0, 0), (S1, 1));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2), (S3, 3));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4), (S5, 5));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4), (S5, 5), (S6, 6));
impl_strategy_tuple!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4), (S5, 5), (S6, 6), (S7, 7));

thread_local! {
    /// Set while the runner probes candidates: the wrapping panic hook
    /// suppresses the default "thread panicked" chatter for these
    /// intentional panics (hundreds can fire during one shrink).
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that delegates to the
/// previous hook unless the current thread is probing a candidate.
fn install_probe_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `body` against `v`, returning the panic message on failure.
fn probe<V>(body: &impl Fn(V), v: V) -> Option<String> {
    PROBING.with(|p| p.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| body(v)));
    PROBING.with(|p| p.set(false));
    result.err().map(panic_message)
}

/// Executes one property: samples `cfg.cases` cases, and on the first
/// failure shrinks it to a minimal counterexample and panics with it.
/// The [`proptest!`] macro expands each property function into a call of
/// this runner.
pub fn run_property<S: StrategyTuple>(
    property_name: &str,
    cfg: &ProptestConfig,
    arg_names: &[&str],
    strategies: &S,
    body: impl Fn(S::Value),
) {
    install_probe_hook();
    for case in 0..cfg.cases {
        let mut rng = case_rng(case);
        let sampled = strategies.sample(&mut rng);
        let Some(first_failure) = probe(&body, sampled.clone()) else {
            continue;
        };
        // Greedy shrink: accept the first candidate that still fails and
        // restart candidate generation from it; stop at a local minimum
        // (every candidate passes) or at the attempt ceiling.
        let mut minimal = sampled;
        let mut last_failure = first_failure.clone();
        let mut attempts = 0u32;
        let mut accepted = 0u32;
        'shrinking: loop {
            for cand in strategies.component_candidates(&minimal) {
                if attempts >= cfg.max_shrink_iters {
                    break 'shrinking;
                }
                attempts += 1;
                if let Some(msg) = probe(&body, cand.clone()) {
                    minimal = cand;
                    last_failure = msg;
                    accepted += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!(
            "proptest shim: property `{property_name}` failed (case {case}; \
             {accepted} shrink steps in {attempts} attempts)\n  \
             minimal failing input: {}\n  failure: {last_failure}\n  \
             original failure: {first_failure}",
            strategies.display(arg_names, &minimal),
        );
    }
}

/// Property-test entry point; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &__cfg,
                &[$(stringify!($arg)),+],
                &__strategies,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 1usize..4) {
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..8).map(|c| s.sample(&mut crate::case_rng(c))).collect();
        let b: Vec<u64> = (0..8).map(|c| s.sample(&mut crate::case_rng(c))).collect();
        assert_eq!(a, b);
    }

    // -- shrinking self-tests -----------------------------------------------

    proptest! {
        // Known minimum: the property first fails at exactly 500.
        fn fails_at_500(x in 0u64..1000) {
            prop_assert!(x < 500);
        }

        // Two arguments with a joint failure region; each shrinks to its
        // own minimum independently (x -> 30, y -> 4).
        fn fails_jointly(x in 0i32..100, y in 0i32..10) {
            prop_assert!(x < 30 || y < 4);
        }

        // Known minimal prefix: sums of ones first reach 10 at length 10.
        fn fails_at_len_10(v in crate::collection::vec(1u64..=1, 0usize..32)) {
            prop_assert!(v.iter().sum::<u64>() < 10);
        }
    }

    fn failure_message(f: fn()) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("property must fail");
        crate::panic_message(payload)
    }

    #[test]
    fn scalar_failure_shrinks_to_known_minimum() {
        let msg = failure_message(fails_at_500);
        assert!(
            msg.contains("minimal failing input: x = 500"),
            "binary search must land on the boundary: {msg}"
        );
    }

    #[test]
    fn multi_argument_failure_shrinks_each_component() {
        let msg = failure_message(fails_jointly);
        assert!(
            msg.contains("minimal failing input: x = 30, y = 4"),
            "both components must reach their minima: {msg}"
        );
    }

    #[test]
    fn collection_failure_prefix_shrinks_to_known_minimum() {
        let msg = failure_message(fails_at_len_10);
        assert!(
            msg.contains("minimal failing input: v = [1, 1, 1, 1, 1, 1, 1, 1, 1, 1]"),
            "prefix shrink must stop at the 10-element boundary: {msg}"
        );
    }

    #[test]
    fn shrink_candidates_form_a_geometric_ladder_toward_origin() {
        use crate::Strategy;
        let s = 0u64..1000;
        let cands = s.shrink(&800);
        assert_eq!(cands.first(), Some(&0), "most aggressive first: the origin");
        assert_eq!(cands.last(), Some(&799), "predecessor last: exact-minimum polish");
        assert!(cands.contains(&400), "midpoint present");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "strictly increasing: {cands:?}");
        assert!(s.shrink(&0).is_empty(), "origin is minimal");
        let inclusive = -8i32..=7;
        assert_eq!(inclusive.shrink(&7), vec![-8, 0, 4, 6]);
    }

    #[test]
    fn float_shrink_ladders_toward_origin() {
        use crate::Strategy;
        let s = 0.0f64..1.0;
        let cands = s.shrink(&0.5);
        assert_eq!(cands[0], 0.0);
        assert_eq!(cands[1], 0.25, "midpoint second");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "monotone ladder: {cands:?}");
        assert!(*cands.last().unwrap() < 0.5);
    }

    proptest! {
        // Wide range: a linear descent would burn the whole attempt budget
        // ~4.5M steps short; the geometric ladder must land exactly on the
        // 5_000_000 boundary within max_shrink_iters.
        fn fails_at_five_million(x in 0u64..10_000_000) {
            prop_assert!(x < 5_000_000);
        }
    }

    #[test]
    fn wide_range_failure_bisects_to_exact_minimum() {
        let msg = failure_message(fails_at_five_million);
        assert!(
            msg.contains("minimal failing input: x = 5000000"),
            "bisection must reach the exact boundary of a wide range: {msg}"
        );
    }

    #[test]
    fn passing_properties_do_not_shrink_report() {
        // A property that never fails must simply return.
        proptest! {
            fn always_passes(x in 0u32..10) {
                prop_assert!(x < 10);
            }
        }
        always_passes();
    }
}
