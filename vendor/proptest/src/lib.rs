//! Minimal, dependency-light stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property suites use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range strategies (`0u64..1000`, `-128i32..=127`, `0.0f64..1.0`),
//! [`ProptestConfig::with_cases`] and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! immediately with the sampled arguments in the panic message (every
//! strategy here is seed-deterministic, so failures reproduce exactly).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the same ceiling so suites
        // that omit a config stay within the tier-1 time budget.
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Fixed per-case RNG used by the [`proptest!`] expansion. Mixing the case
/// index through a multiplicative hash decorrelates consecutive cases.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64((case as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// Property-test entry point; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(__case);
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the property runner (panics here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 1usize..4) {
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..8).map(|c| s.sample(&mut crate::case_rng(c))).collect();
        let b: Vec<u64> = (0..8).map(|c| s.sample(&mut crate::case_rng(c))).collect();
        assert_eq!(a, b);
    }
}
