//! Collection strategies (the subset this workspace uses: `vec`).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

use crate::Strategy;

/// Strategy producing `Vec<S::Value>` with a length drawn from `len` and
/// elements drawn from `element`. Build one with [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `Vec` strategy: `vec(0u32..10, 0..16)` yields vectors of 0–15 elements
/// in `[0, 10)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy requires a non-empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone + Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }

    /// Prefix shrink: try the shortest legal prefix (biggest jump), the
    /// halfway prefix (binary search on length), then one element shorter
    /// (linear polish). Element values are left as sampled — length is
    /// the dimension this shim minimizes.
    fn shrink(&self, failing: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let n = failing.len();
        if n <= min {
            return Vec::new();
        }
        let mut lens = vec![min];
        let half = min + (n - min) / 2;
        if half != min && half != n {
            lens.push(half);
        }
        if n - 1 != min && Some(&(n - 1)) != lens.last() {
            lens.push(n - 1);
        }
        lens.into_iter().map(|l| failing[..l].to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;

    #[test]
    fn samples_respect_length_and_element_ranges() {
        let s = vec(0u32..10, 2..6);
        let mut rng = crate::case_rng(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prefix_shrink_orders_min_half_pred() {
        let s = vec(0u32..10, 1..32);
        let failing: Vec<u32> = (0..9).collect();
        let shrunk = s.shrink(&failing);
        let lens: Vec<usize> = shrunk.iter().map(|v| v.len()).collect();
        assert_eq!(lens, vec![1, 5, 8]);
        // Prefixes, not arbitrary subsets.
        assert_eq!(shrunk[1], (0..5).collect::<Vec<u32>>());
        assert!(s.shrink(&vec![7u32]).is_empty(), "minimal length cannot shrink");
    }
}
